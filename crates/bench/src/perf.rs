//! The `perfreport` harness: named engine workloads, wall-clock
//! measurement, pinned completion-time digests, and the machine-readable
//! `BENCH_*.json` report.
//!
//! Three engine workloads span the per-event regimes:
//!
//! * `paper-fig3` — the paper's two-node LBP-1 system (service-dominated:
//!   throughput of the plain event loop and the replication runner);
//! * `shock-storm` — 32 nodes under correlated environmental shocks
//!   (bursts of simultaneous failures, each cancelling pending service and
//!   failure events);
//! * `cascading-churn` — 24 nodes with load-dependent failure
//!   amplification, where every churn transition cancels and redraws every
//!   other node's pending failure — the cancel-heavy path the indexed
//!   event queue exists for.
//!
//! A fourth workload, `sweep-grid`, measures the *sweep scheduler* rather
//! than the event loop: a fine-grained grid of many small points with
//! mixed replication counts, run both through one flattened
//! `(point, replication)` scheduler pass and through the sequential-point
//! baseline (one scheduler invocation per point — the pre-scheduler sweep
//! shape, with its per-point spawn/join barrier) at the same thread
//! count. The engine code is identical in both modes; the measured gap is
//! exactly the per-point orchestration cost the flattened pass removes.
//!
//! A fifth workload, `compare-grid`, measures the **policy axis**: the
//! same grid × a 3-policy comparison set, run once through a single
//! `(point, policy, replication)` scheduler pass (how `churnbal-lab
//! compare` executes) and once as K sequential single-policy sweeps (how
//! the comparison had to be asked before). The bit-exact cross-check of
//! the two modes doubles as a measured proof of the common-random-numbers
//! invariant.
//!
//! Wall-clock numbers are measurements; the *sample paths* are pinned: the
//! digest of each workload's completion-time vector is asserted against a
//! committed value, so a refactor that silently changes sampling fails the
//! report rather than producing an incomparable number.

use std::time::Instant;

use churnbal_cluster::exec::{run_grid_policies_streaming, run_grid_streaming, PointJob};
use churnbal_cluster::{run_replications, ChurnModel, McEstimate, QueueBackend, SimOptions};
use churnbal_cluster::{
    ChannelModel, DownPolicy, NetworkConfig, NodeConfig, SystemConfig, Topology,
};
use churnbal_core::{Lbp2, PolicySpec};
use churnbal_stochastic::digest_f64s;

/// Master seed shared by every perf workload (digests are pinned to it).
pub const PERF_SEED: u64 = 20060425;

/// One named engine workload: a system, a policy, and replication counts.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Stable workload name (JSON key, digest-table key).
    pub name: &'static str,
    /// The system under test.
    pub config: SystemConfig,
    /// The policy driving it.
    pub policy: PolicySpec,
    /// Replications in a full run.
    pub reps: u64,
    /// Replications in a `--quick` run.
    pub quick_reps: u64,
}

/// The perf suite, in report order.
#[must_use]
pub fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "paper-fig3",
            config: SystemConfig::paper([100, 60]),
            policy: PolicySpec::Lbp1 {
                sender: 0,
                receiver: 1,
                gain: 0.35,
            },
            reps: 500,
            quick_reps: 50,
        },
        Workload {
            name: "shock-storm",
            config: shock_storm_config(),
            policy: PolicySpec::Lbp2 { gain: 1.0 },
            reps: 200,
            quick_reps: 20,
        },
        Workload {
            name: "cascading-churn",
            config: cascading_churn_config(),
            policy: PolicySpec::UponFailureOnly,
            reps: 200,
            quick_reps: 20,
        },
    ]
}

/// 32 heterogeneous nodes hit by correlated shocks: each shock downs about
/// half the fleet at one instant, cancelling every victim's pending
/// service and failure events.
#[must_use]
pub fn shock_storm_config() -> SystemConfig {
    let rates = [0.8, 1.2, 1.6, 2.0];
    SystemConfig::new(
        (0..32)
            .map(|i| NodeConfig::new(rates[i % rates.len()], 0.02, 0.4, 30))
            .collect(),
        NetworkConfig::exponential(0.01),
    )
    .with_churn_model(ChurnModel::CorrelatedShocks {
        shock_rate: 0.25,
        hit_probability: 0.5,
    })
}

/// 24 nodes with cascading failure amplification: every failure and
/// recovery changes every other up node's hazard, so the engine cancels
/// and redraws up to `n − 1` pending failure events per churn transition.
#[must_use]
pub fn cascading_churn_config() -> SystemConfig {
    SystemConfig::new(
        (0..24)
            .map(|_| NodeConfig::new(1.0, 0.06, 0.5, 40))
            .collect(),
        NetworkConfig::exponential(0.01),
    )
    .with_churn_model(ChurnModel::Cascading { amplification: 3.0 })
}

/// Thread count of the `sweep-grid` comparison: both the flattened
/// scheduler and the sequential-point baseline run with this many
/// workers, so the measured speedup isolates scheduling, not parallelism.
pub const SWEEP_GRID_THREADS: usize = 4;

/// The `sweep-grid` workload: a fine-grained grid of small two-node
/// systems with mixed replication counts (many points with fewer
/// replications than workers — the shape that leaves cores idle under
/// per-point parallelism). Returns the configs and the per-point rep
/// counts.
#[must_use]
pub fn sweep_grid(quick: bool) -> (Vec<SystemConfig>, Vec<u64>) {
    let points = if quick { 32 } else { 96 };
    // Mixed on purpose: singleton points pay the worst idle-core cost
    // under per-point parallelism, multi-rep points pay the per-point
    // spawn/join barrier, and the occasional 8-rep point creates the
    // imbalance a flattened queue has to absorb.
    const REPS_CYCLE: [u64; 6] = [1, 2, 4, 4, 2, 8];
    let mut configs = Vec::with_capacity(points);
    let mut reps = Vec::with_capacity(points);
    for k in 0..points {
        let m = [8 + (k as u32 % 5) * 2, 5 + (k as u32 % 3) * 2];
        let churn_scale = 0.5 + 0.25 * (k % 4) as f64;
        configs.push(SystemConfig::new(
            vec![
                NodeConfig::new(1.08, 0.05 * churn_scale, 0.1, m[0]),
                NodeConfig::new(1.86, 0.05 * churn_scale, 0.05, m[1]),
            ],
            NetworkConfig::exponential(0.02),
        ));
        reps.push(REPS_CYCLE[k % REPS_CYCLE.len()]);
    }
    (configs, reps)
}

/// Result of measuring the `sweep-grid` workload.
#[derive(Clone, Debug)]
pub struct SweepGridMeasurement {
    /// Grid points run.
    pub points: usize,
    /// Total replications across the grid.
    pub reps: u64,
    /// Total engine events (identical in both execution modes).
    pub events: u64,
    /// Wall-clock seconds through the flattened scheduler.
    pub wall_seconds: f64,
    /// Wall-clock seconds through the sequential-point baseline.
    pub sequential_wall_seconds: f64,
    /// Worker threads used by both modes.
    pub threads: usize,
    /// FNV-1a digest of the flattened completion-time vector (all points
    /// in grid order) — asserted identical between the two modes before
    /// either wall-clock number is reported.
    pub digest: u64,
}

impl SweepGridMeasurement {
    /// Sequential-point wall clock over scheduler wall clock.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.sequential_wall_seconds / self.wall_seconds
    }

    /// Events per second through the scheduler.
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_seconds
    }
}

/// Measures the `sweep-grid` workload: the same grid through the
/// flattened scheduler and through the sequential-point baseline, with
/// the sample paths cross-checked bit-exactly before timing is trusted.
/// Each mode keeps its fastest of `repeat` rounds (see
/// [`measure_repeated`] for why minimum-of-N is the right estimator).
///
/// # Panics
/// Panics if `repeat == 0` or the two execution modes disagree on any
/// sampled value (a scheduler determinism bug).
#[must_use]
pub fn measure_sweep_grid(quick: bool, seed: u64, repeat: u32) -> SweepGridMeasurement {
    assert!(repeat > 0, "need at least one measurement round");
    let (configs, reps) = sweep_grid(quick);
    let jobs: Vec<PointJob<'_>> = configs
        .iter()
        .zip(&reps)
        .map(|(config, &reps)| PointJob {
            config,
            reps,
            seed,
            rep_base: 0,
            antithetic: false,
            options: SimOptions::default(),
        })
        .collect();

    let mut times = Vec::new();
    let mut events = 0u64;
    let mut wall_seconds = f64::INFINITY;
    let mut sequential_wall_seconds = f64::INFINITY;
    for round in 0..repeat {
        // Flattened scheduler: one pool over every (point, rep) task.
        let mut round_times = Vec::new();
        let mut round_events = 0u64;
        let start = Instant::now();
        run_grid_streaming(
            &jobs,
            &|_, _| Lbp2::new(1.0),
            SWEEP_GRID_THREADS,
            0,
            |_, stats| {
                round_times.extend_from_slice(&stats.completion_times);
                round_events += stats.total_events;
                Ok(())
            },
        )
        .expect("sweep-grid scheduler run");
        wall_seconds = wall_seconds.min(start.elapsed().as_secs_f64());

        // Sequential-point baseline: the pre-scheduler sweep *shape* —
        // one scheduler invocation per point (replication-parallel
        // within it), paying a worker-pool spawn/join barrier between
        // points. Same engine code either way; only the orchestration
        // differs.
        let mut seq_times = Vec::new();
        let mut seq_events = 0u64;
        let start = Instant::now();
        for job in &jobs {
            let est = run_replications(
                job.config,
                &|_| Lbp2::new(1.0),
                job.reps,
                job.seed,
                SWEEP_GRID_THREADS,
                job.options,
            );
            seq_times.extend_from_slice(&est.completion_times);
            seq_events += est.total_events;
        }
        sequential_wall_seconds = sequential_wall_seconds.min(start.elapsed().as_secs_f64());

        assert_eq!(
            round_times, seq_times,
            "sweep-grid: scheduler and sequential-point baseline sampled \
             different trajectories"
        );
        assert_eq!(
            round_events, seq_events,
            "sweep-grid: event counts diverged"
        );
        if round == 0 {
            times = round_times;
            events = round_events;
        } else {
            assert_eq!(times, round_times, "sweep-grid: rounds disagree");
        }
    }
    SweepGridMeasurement {
        points: configs.len(),
        reps: reps.iter().sum(),
        events,
        wall_seconds,
        sequential_wall_seconds,
        threads: SWEEP_GRID_THREADS,
        digest: digest_f64s(&times),
    }
}

/// The policy set of the `compare-grid` workload, in baseline-first
/// order — the same declarative specs the lab's `compare` resolves.
#[must_use]
pub fn compare_grid_policies() -> Vec<PolicySpec> {
    vec![
        PolicySpec::Lbp2 { gain: 1.0 },
        PolicySpec::UponFailureOnly,
        PolicySpec::NoBalancing,
    ]
}

/// Result of measuring the `compare-grid` workload: the sweep grid ×
/// a 3-policy set through one shared scheduler pass vs K sequential
/// single-policy sweeps.
#[derive(Clone, Debug)]
pub struct CompareGridMeasurement {
    /// Grid points run.
    pub points: usize,
    /// Policies evaluated per point.
    pub policies: usize,
    /// Total replications across `points × policies`.
    pub reps: u64,
    /// Total engine events (identical in both execution modes).
    pub events: u64,
    /// Wall-clock seconds through the single shared pass.
    pub wall_seconds: f64,
    /// Wall-clock seconds through K sequential single-policy sweeps.
    pub sequential_wall_seconds: f64,
    /// Worker threads used by both modes.
    pub threads: usize,
    /// FNV-1a digest of the flattened completion-time vector (cells in
    /// `(point, policy)` order) — asserted identical between the two
    /// modes before either wall-clock number is reported.
    pub digest: u64,
}

impl CompareGridMeasurement {
    /// K-sequential-sweeps wall clock over shared-pass wall clock.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.sequential_wall_seconds / self.wall_seconds
    }

    /// Events per second through the shared pass.
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_seconds
    }
}

/// Measures the `compare-grid` workload: the `sweep_grid` systems × the
/// 3-policy comparison set, once through a single
/// [`run_grid_policies_streaming`] pass (the lab `compare` execution
/// shape) and once as K sequential [`run_grid_streaming`] sweeps (the
/// pre-policy-axis way to answer the same question). Sample paths are
/// cross-checked bit-exactly between the modes before timing is trusted —
/// which is also the common-random-numbers invariant, measured instead of
/// assumed. Each mode keeps its fastest of `repeat` rounds.
///
/// # Panics
/// Panics if `repeat == 0` or the two execution modes disagree on any
/// sampled value (a scheduler determinism bug).
#[must_use]
pub fn measure_compare_grid(quick: bool, seed: u64, repeat: u32) -> CompareGridMeasurement {
    assert!(repeat > 0, "need at least one measurement round");
    let (configs, reps) = sweep_grid(quick);
    let policies = compare_grid_policies();
    for (config, policy) in configs
        .iter()
        .flat_map(|c| policies.iter().map(move |p| (c, p)))
    {
        policy
            .validate_for(config)
            .expect("compare-grid policies fit every point");
    }
    let jobs: Vec<PointJob<'_>> = configs
        .iter()
        .zip(&reps)
        .map(|(config, &reps)| PointJob {
            config,
            reps,
            seed,
            rep_base: 0,
            antithetic: false,
            options: SimOptions::default(),
        })
        .collect();
    let k = policies.len();

    let mut times = Vec::new();
    let mut events = 0u64;
    let mut wall_seconds = f64::INFINITY;
    let mut sequential_wall_seconds = f64::INFINITY;
    for round in 0..repeat {
        // Shared pass: one pool over every (point, policy, rep) task.
        let mut round_times = Vec::new();
        let mut round_events = 0u64;
        let start = Instant::now();
        run_grid_policies_streaming(
            &jobs,
            k,
            &|p, v, _| policies[v].build(jobs[p].config).expect("validated"),
            SWEEP_GRID_THREADS,
            0,
            |_, _, stats| {
                round_times.extend_from_slice(&stats.completion_times);
                round_events += stats.total_events;
                Ok(())
            },
        )
        .expect("compare-grid shared pass");
        wall_seconds = wall_seconds.min(start.elapsed().as_secs_f64());

        // Baseline: K sequential sweeps, one full scheduler pass per
        // policy — same engine code, same per-policy task order; only the
        // orchestration differs. Results land per policy and are then
        // interleaved into the shared pass's (point, policy) cell order
        // for the bit-exact cross-check.
        let mut per_policy: Vec<Vec<Vec<f64>>> = Vec::with_capacity(k);
        let mut seq_events = 0u64;
        let start = Instant::now();
        for policy in &policies {
            let mut cells: Vec<Vec<f64>> = Vec::with_capacity(jobs.len());
            run_grid_streaming(
                &jobs,
                &|p, _| policy.build(jobs[p].config).expect("validated"),
                SWEEP_GRID_THREADS,
                0,
                |_, stats| {
                    seq_events += stats.total_events;
                    cells.push(stats.completion_times);
                    Ok(())
                },
            )
            .expect("compare-grid sequential sweep");
            per_policy.push(cells);
        }
        sequential_wall_seconds = sequential_wall_seconds.min(start.elapsed().as_secs_f64());
        let mut seq_times = Vec::with_capacity(round_times.len());
        for p in 0..jobs.len() {
            for cells in &per_policy {
                seq_times.extend_from_slice(&cells[p]);
            }
        }

        assert_eq!(
            round_times, seq_times,
            "compare-grid: shared pass and sequential sweeps sampled \
             different trajectories (CRN invariant broken)"
        );
        assert_eq!(
            round_events, seq_events,
            "compare-grid: event counts diverged"
        );
        if round == 0 {
            times = round_times;
            events = round_events;
        } else {
            assert_eq!(times, round_times, "compare-grid: rounds disagree");
        }
    }
    CompareGridMeasurement {
        points: configs.len(),
        policies: k,
        reps: reps.iter().sum::<u64>() * k as u64,
        events,
        wall_seconds,
        sequential_wall_seconds,
        threads: SWEEP_GRID_THREADS,
        digest: digest_f64s(&times),
    }
}

/// Pinned `(quick, full)` digests of the `compare-grid` flattened
/// completion-time vector for [`PERF_SEED`]. Change them deliberately or
/// not at all.
pub const EXPECTED_COMPARE_GRID_DIGESTS: (u64, u64) =
    (0x0098_fd56_7fda_0769, 0x6d97_8a9a_9f7a_3d4d);

/// The pinned `compare-grid` digest for the given mode.
#[must_use]
pub fn expected_compare_grid_digest(quick: bool) -> u64 {
    if quick {
        EXPECTED_COMPARE_GRID_DIGESTS.0
    } else {
        EXPECTED_COMPARE_GRID_DIGESTS.1
    }
}

/// Torus dimensions of the `large-fleet` workload: `100 × 100` (10⁴
/// nodes) in full mode, `50 × 50` in `--quick`.
#[must_use]
pub fn large_fleet_dims(quick: bool) -> (usize, usize) {
    if quick {
        (50, 50)
    } else {
        (100, 100)
    }
}

/// Simulated-time horizon of the `large-fleet` workload. The fleet
/// carries ~40 initial tasks per node — more than it can drain before
/// this deadline — so both execution modes measure a steady churn-plus-
/// service regime instead of a drain tail.
pub const LARGE_FLEET_DEADLINE: f64 = 25.0;

fn large_fleet_nodes(n: usize) -> Vec<NodeConfig> {
    let rates = [0.9, 1.0, 1.1, 1.2];
    (0..n)
        .map(|i| NodeConfig::new(rates[i % rates.len()], 0.002, 0.1, 40 + (i as u32 % 3)))
        .collect()
}

fn large_fleet_churn(cols: usize) -> ChurnModel {
    // One rack per torus row; shocks strike whole racks with per-rack
    // probabilities cycled over four reliability classes.
    ChurnModel::RackShocks {
        shock_rate: 2.0,
        group_size: cols as u32,
        hit_probabilities: vec![0.10, 0.40, 0.20, 0.60],
    }
}

/// The `large-fleet` system: a `rows × cols` torus (each rack is one
/// torus row) under rack-correlated shock churn, balanced by LBP-2 with
/// **neighbor-local** O(degree) policy scans and the **calendar-queue**
/// event backend.
#[must_use]
pub fn large_fleet_config(quick: bool) -> SystemConfig {
    let (rows, cols) = large_fleet_dims(quick);
    SystemConfig::new(
        large_fleet_nodes(rows * cols),
        NetworkConfig::exponential(0.05),
    )
    .with_churn_model(large_fleet_churn(cols))
    .with_topology(Topology::torus(rows, cols).expect("torus dims are valid"))
}

/// The identical fleet with **no topology installed**: every policy scan
/// falls back to the global O(n) walk and the event queue is forced onto
/// the binary heap — the pre-topology execution shape the `large-fleet`
/// speedup is measured against.
#[must_use]
pub fn large_fleet_global_config(quick: bool) -> SystemConfig {
    let (rows, cols) = large_fleet_dims(quick);
    SystemConfig::new(
        large_fleet_nodes(rows * cols),
        NetworkConfig::exponential(0.05),
    )
    .with_churn_model(large_fleet_churn(cols))
}

/// Trajectory digest of a deadline-bounded replication run. The
/// completion-time vector alone degenerates to the deadline constant, so
/// the digest folds in the per-replication failure and shipment counts
/// plus the total event count — any drifted trajectory moves at least
/// one of them.
#[must_use]
pub fn deadline_run_digest(est: &McEstimate) -> u64 {
    let mut values = est.completion_times.clone();
    values.extend(est.failures_per_rep.iter().map(|&f| f as f64));
    values.extend(est.tasks_shipped_per_rep.iter().map(|&s| s as f64));
    values.push(est.total_events as f64);
    digest_f64s(&values)
}

/// Result of measuring the `large-fleet` workload: the same ≥10⁴-node
/// fleet once through the topology path (neighbor-local scans + calendar
/// queue) and once through the global path (O(n) scans + binary heap).
#[derive(Clone, Debug)]
pub struct LargeFleetMeasurement {
    /// Fleet size (torus rows × cols).
    pub nodes: usize,
    /// Replications per mode.
    pub reps: u64,
    /// Engine events through the topology path.
    pub events: u64,
    /// Wall-clock seconds through the topology path.
    pub wall_seconds: f64,
    /// Engine events through the global-scan/heap path.
    pub baseline_events: u64,
    /// Wall-clock seconds through the global-scan/heap path.
    pub baseline_wall_seconds: f64,
    /// [`deadline_run_digest`] of the topology-path run.
    pub digest: u64,
    /// [`deadline_run_digest`] of the global-path run.
    pub baseline_digest: u64,
}

impl LargeFleetMeasurement {
    /// Events per second through the topology path.
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_seconds
    }

    /// Events per second through the global-scan/heap path.
    #[must_use]
    pub fn baseline_events_per_sec(&self) -> f64 {
        self.baseline_events as f64 / self.baseline_wall_seconds
    }

    /// Topology-path throughput over global-path throughput. The two
    /// modes sample different trajectories (the topology changes where
    /// transfers may go), so this is a throughput ratio, not a same-work
    /// wall-clock ratio.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.events_per_sec() / self.baseline_events_per_sec()
    }
}

/// Measures the `large-fleet` workload: one deadline-bounded replication
/// of the torus fleet per mode, fastest of `repeat` rounds per mode, with
/// both trajectory digests asserted stable across rounds. Single-threaded
/// on purpose — the contrast under measurement is per-event policy-scan
/// and queue cost, not parallelism.
///
/// # Panics
/// Panics if `repeat == 0` or any round samples a different trajectory.
#[must_use]
pub fn measure_large_fleet(quick: bool, seed: u64, repeat: u32) -> LargeFleetMeasurement {
    assert!(repeat > 0, "need at least one measurement round");
    let (rows, cols) = large_fleet_dims(quick);
    let local_cfg = large_fleet_config(quick);
    let global_cfg = large_fleet_global_config(quick);
    let local_opts = SimOptions {
        deadline: Some(LARGE_FLEET_DEADLINE),
        backend: QueueBackend::Calendar,
        ..SimOptions::default()
    };
    let global_opts = SimOptions {
        deadline: Some(LARGE_FLEET_DEADLINE),
        backend: QueueBackend::Heap,
        ..SimOptions::default()
    };
    let reps = 1;
    let mut m: Option<LargeFleetMeasurement> = None;
    for _ in 0..repeat {
        let start = Instant::now();
        let local = run_replications(&local_cfg, &|_| Lbp2::new(1.0), reps, seed, 1, local_opts);
        let wall_seconds = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let global = run_replications(&global_cfg, &|_| Lbp2::new(1.0), reps, seed, 1, global_opts);
        let baseline_wall_seconds = start.elapsed().as_secs_f64();
        let round = LargeFleetMeasurement {
            nodes: rows * cols,
            reps,
            events: local.total_events,
            wall_seconds,
            baseline_events: global.total_events,
            baseline_wall_seconds,
            digest: deadline_run_digest(&local),
            baseline_digest: deadline_run_digest(&global),
        };
        m = match m {
            None => Some(round),
            Some(mut prev) => {
                assert_eq!(prev.digest, round.digest, "large-fleet: rounds disagree");
                assert_eq!(
                    prev.baseline_digest, round.baseline_digest,
                    "large-fleet: baseline rounds disagree"
                );
                prev.wall_seconds = prev.wall_seconds.min(round.wall_seconds);
                prev.baseline_wall_seconds =
                    prev.baseline_wall_seconds.min(round.baseline_wall_seconds);
                Some(prev)
            }
        };
    }
    m.expect("repeat >= 1")
}

/// Pinned `(quick, full)` [`deadline_run_digest`]s of the `large-fleet`
/// topology-path run for [`PERF_SEED`].
pub const EXPECTED_LARGE_FLEET_DIGESTS: (u64, u64) = (0x09df_cb9f_e3b8_6f66, 0x655c_0ac6_d0f3_3bb2);

/// Pinned `(quick, full)` [`deadline_run_digest`]s of the `large-fleet`
/// global-scan/heap baseline run for [`PERF_SEED`].
pub const EXPECTED_LARGE_FLEET_BASELINE_DIGESTS: (u64, u64) =
    (0x1624_d456_4450_ab9c, 0x09f0_8430_eb04_6aa7);

/// The pinned `large-fleet` topology-path digest for the given mode.
#[must_use]
pub fn expected_large_fleet_digest(quick: bool) -> u64 {
    if quick {
        EXPECTED_LARGE_FLEET_DIGESTS.0
    } else {
        EXPECTED_LARGE_FLEET_DIGESTS.1
    }
}

/// The pinned `large-fleet` baseline digest for the given mode.
#[must_use]
pub fn expected_large_fleet_baseline_digest(quick: bool) -> u64 {
    if quick {
        EXPECTED_LARGE_FLEET_BASELINE_DIGESTS.0
    } else {
        EXPECTED_LARGE_FLEET_BASELINE_DIGESTS.1
    }
}

/// Result of measuring one workload.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Workload name.
    pub name: &'static str,
    /// Replications run.
    pub reps: u64,
    /// Total engine events dispatched.
    pub events: u64,
    /// Wall-clock seconds for the whole replication run.
    pub wall_seconds: f64,
    /// Mean completion time (a sanity anchor, not a perf number).
    pub mean_completion: f64,
    /// FNV-1a digest of the completion-time vector.
    pub digest: u64,
}

impl Measurement {
    /// Events per wall-clock second.
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_seconds
    }
}

/// Pinned completion-time digests: `(workload, quick digest, full digest)`
/// for the default seed. Any engine change that alters a sample path must
/// update these deliberately (and justify it in the PR).
pub const EXPECTED_DIGESTS: &[(&str, u64, u64)] = &[
    ("paper-fig3", 0x2c94_8cc7_508e_4943, 0x23ce_c6b9_6177_7e3f),
    ("shock-storm", 0x652b_fe99_eae3_59e7, 0xafa7_2471_119b_5837),
    (
        "cascading-churn",
        0xa6dd_59e7_2da6_9095,
        0xfbf3_672e_d885_7e79,
    ),
];

/// Looks up the pinned digest for a workload in the given mode.
#[must_use]
pub fn expected_digest(name: &str, quick: bool) -> Option<u64> {
    EXPECTED_DIGESTS
        .iter()
        .find(|(n, _, _)| *n == name)
        .map(|&(_, q, f)| if quick { q } else { f })
}

/// Pinned `(quick, full)` digests of the `sweep-grid` flattened
/// completion-time vector for [`PERF_SEED`]. Change them deliberately or
/// not at all.
pub const EXPECTED_SWEEP_GRID_DIGESTS: (u64, u64) = (0x5117_9065_1d66_93b9, 0x647f_3dce_b148_4c05);

/// The pinned `sweep-grid` digest for the given mode.
#[must_use]
pub fn expected_sweep_grid_digest(quick: bool) -> u64 {
    if quick {
        EXPECTED_SWEEP_GRID_DIGESTS.0
    } else {
        EXPECTED_SWEEP_GRID_DIGESTS.1
    }
}

/// Runs one workload and measures it. `threads` follows the
/// replication-runner convention (0 = auto); digests are thread-invariant.
/// Equivalent to [`measure_repeated`] with a single round.
///
/// # Panics
/// Panics if the workload's policy does not build against its config
/// (a bug in the workload table).
#[must_use]
pub fn measure(w: &Workload, quick: bool, threads: usize, seed: u64) -> Measurement {
    measure_repeated(w, quick, threads, seed, 1)
}

/// Runs one workload `repeat` times and keeps the fastest round's wall
/// clock. Wall-clock noise on a shared machine is one-sided — scheduler
/// preemption and frequency dips only ever *add* time — so the minimum
/// over a few rounds estimates the unloaded throughput far more stably
/// than any single shot (the standard microbenchmark practice). Events,
/// digest and mean are identical across rounds (asserted), so only the
/// timing varies.
///
/// # Panics
/// Panics if `repeat == 0`, if the workload's policy does not build, or
/// if any round samples a different trajectory (a determinism bug).
#[must_use]
pub fn measure_repeated(
    w: &Workload,
    quick: bool,
    threads: usize,
    seed: u64,
    repeat: u32,
) -> Measurement {
    assert!(repeat > 0, "need at least one measurement round");
    let reps = if quick { w.quick_reps } else { w.reps };
    // Policies are rebuilt per replication through the same declarative
    // path the lab uses, so the measurement covers the production loop.
    w.policy
        .validate_for(&w.config)
        .expect("perf workload must be self-consistent");
    let mut best: Option<Measurement> = None;
    for _ in 0..repeat {
        let start = Instant::now();
        let est = run_replications(
            &w.config,
            &|_| w.policy.build(&w.config).expect("validated"),
            reps,
            seed,
            threads,
            SimOptions::default(),
        );
        let wall_seconds = start.elapsed().as_secs_f64();
        let m = Measurement {
            name: w.name,
            reps,
            events: est.total_events,
            wall_seconds,
            mean_completion: est.mean(),
            digest: digest_f64s(&est.completion_times),
        };
        best = match best {
            None => Some(m),
            Some(prev) => {
                assert_eq!(prev.digest, m.digest, "{}: rounds disagree", w.name);
                assert_eq!(prev.events, m.events, "{}: rounds disagree", w.name);
                Some(if m.wall_seconds < prev.wall_seconds {
                    m
                } else {
                    prev
                })
            }
        };
    }
    best.expect("repeat >= 1")
}

/// Simulation-time probe cadence of the `probe-overhead` measurement.
/// Deliberately coarse: a handful of ticks per replication against ~10⁴
/// events, so the armed run isolates the **per-event probe branch** —
/// the cost the disabled path pays — instead of the per-tick sampling
/// work, whose price scales with the cadence the user chose.
pub const PROBE_OVERHEAD_DT: f64 = 50.0;

/// Result of measuring the observability cost on the `cascading-churn`
/// engine workload: the identical run with probes off and with a
/// [`PROBE_OVERHEAD_DT`]-cadence probe armed.
#[derive(Clone, Debug)]
pub struct ProbeOverheadMeasurement {
    /// Replications per mode.
    pub reps: u64,
    /// Engine events (identical in both modes — probing dispatches no
    /// extra events).
    pub events: u64,
    /// Probe ticks emitted across every replication of the armed mode.
    pub probe_ticks: u64,
    /// Wall-clock seconds with probes off (fastest round).
    pub off_wall_seconds: f64,
    /// Wall-clock seconds with the probe armed (fastest round).
    pub armed_wall_seconds: f64,
    /// Median over rounds of the paired per-round `armed / off` wall
    /// ratio. Each round times both modes back to back and every other
    /// round mirrors the order, so ambient machine-speed drift cancels
    /// out of the pairing instead of biasing one mode — the robust
    /// overhead estimator on shared hardware.
    pub median_armed_ratio: f64,
    /// Completion-time digest — asserted identical between the two modes
    /// (the probe draws no random numbers).
    pub digest: u64,
}

impl ProbeOverheadMeasurement {
    /// Median paired armed-over-off wall ratio, minus one. The off path
    /// differs from the armed path only by skipping tick flushes and
    /// histogram records, so this is an upper bound on what the disabled
    /// probe branch can cost.
    #[must_use]
    pub fn overhead(&self) -> f64 {
        self.median_armed_ratio - 1.0
    }

    /// Events per second with probes off.
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.off_wall_seconds
    }
}

/// Measures the probe overhead: the `cascading-churn` workload (the
/// longest wall clock of the suite — the most stable timing base) with
/// probes off and with a coarse [`PROBE_OVERHEAD_DT`] cadence armed,
/// interleaved within each round so both modes see the same machine
/// state, over `2 × repeat` rounds with the mode order mirrored every
/// other round. Reported walls are the per-mode minima; the reported
/// overhead is the **median of the paired per-round ratios**, which a
/// monotone machine-speed drift straddles symmetrically instead of
/// biasing. The two modes' completion-time digests are asserted
/// identical — the probe's no-RNG contract, measured.
///
/// # Panics
/// Panics if `repeat == 0`, if the two modes sample different
/// trajectories, or if the armed mode emits no ticks.
#[must_use]
pub fn measure_probe_overhead(
    quick: bool,
    threads: usize,
    seed: u64,
    repeat: u32,
) -> ProbeOverheadMeasurement {
    assert!(repeat > 0, "need at least one measurement round");
    let w = workloads()
        .into_iter()
        .find(|w| w.name == "cascading-churn")
        .expect("cascading-churn is in the suite");
    let reps = if quick { w.quick_reps } else { w.reps };
    let policy = |_: u64| w.policy.build(&w.config).expect("validated");
    let armed_opts = SimOptions {
        probe_dt: Some(PROBE_OVERHEAD_DT),
        ..SimOptions::default()
    };
    let mut m: Option<ProbeOverheadMeasurement> = None;
    let mut ratios: Vec<f64> = Vec::new();
    // Twice the requested rounds, mirroring the mode order every other
    // round: a monotone machine-speed drift (the dominant noise on shared
    // containers) then biases neither mode's min-of-N, and the per-round
    // paired ratios below straddle the true overhead symmetrically.
    for round in 0..repeat * 2 {
        let timed = |opts: SimOptions| {
            let start = Instant::now();
            let est = run_replications(&w.config, &policy, reps, seed, threads, opts);
            (est, start.elapsed().as_secs_f64())
        };
        let (off, off_wall_seconds, armed, armed_wall_seconds) = if round % 2 == 0 {
            let (off, off_wall) = timed(SimOptions::default());
            let (armed, armed_wall) = timed(armed_opts);
            (off, off_wall, armed, armed_wall)
        } else {
            let (armed, armed_wall) = timed(armed_opts);
            let (off, off_wall) = timed(SimOptions::default());
            (off, off_wall, armed, armed_wall)
        };
        assert_eq!(
            off.completion_times, armed.completion_times,
            "probe-overhead: arming the probe changed the sampled trajectories"
        );
        assert_eq!(
            off.total_events, armed.total_events,
            "probe-overhead: arming the probe changed the event count"
        );
        let probe_ticks: u64 = armed.probes.iter().map(|r| r.samples.len() as u64).sum();
        assert!(
            probe_ticks > 0,
            "probe-overhead: armed mode emitted no ticks"
        );
        ratios.push(armed_wall_seconds / off_wall_seconds);
        let round = ProbeOverheadMeasurement {
            reps,
            events: off.total_events,
            probe_ticks,
            off_wall_seconds,
            armed_wall_seconds,
            median_armed_ratio: 0.0, // filled in below, once every round is in
            digest: digest_f64s(&off.completion_times),
        };
        m = match m {
            None => Some(round),
            Some(mut prev) => {
                assert_eq!(prev.digest, round.digest, "probe-overhead: rounds disagree");
                prev.off_wall_seconds = prev.off_wall_seconds.min(round.off_wall_seconds);
                prev.armed_wall_seconds = prev.armed_wall_seconds.min(round.armed_wall_seconds);
                Some(prev)
            }
        };
    }
    let mut m = m.expect("repeat >= 1");
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite wall ratios"));
    let mid = ratios.len() / 2;
    m.median_armed_ratio = if ratios.len().is_multiple_of(2) {
        (ratios[mid - 1] + ratios[mid]) / 2.0
    } else {
        ratios[mid]
    };
    m
}

/// Result of measuring the channel-model cost on the `cascading-churn`
/// engine workload: the identical run under [`ChannelModel::Reliable`]
/// and under an armed-but-zero-loss [`ChannelModel::Lossy`].
///
/// Zero loss is the right probe: the lossy branch draws one uniform per
/// transfer arrival and takes the verdict match, but never retries or
/// dead-letters — so the paired ratio isolates the **per-arrival channel
/// branch**, the only cost a reliable run could ever pay.
#[derive(Clone, Debug)]
pub struct ChannelOverheadMeasurement {
    /// Replications per mode.
    pub reps: u64,
    /// Engine events (identical in both modes — zero loss redelivers
    /// nothing).
    pub events: u64,
    /// Wall-clock seconds under the reliable channel (fastest round).
    pub reliable_wall_seconds: f64,
    /// Wall-clock seconds under the zero-loss lossy channel (fastest
    /// round).
    pub lossy_wall_seconds: f64,
    /// Median over rounds of the paired per-round `lossy / reliable`
    /// wall ratio (mirrored mode order, like
    /// [`ProbeOverheadMeasurement::median_armed_ratio`]).
    pub median_lossy_ratio: f64,
    /// Completion-time digest — asserted identical between the two modes
    /// (the channel stream is drawn lazily, so a zero-loss channel still
    /// consumes coins but never alters any legacy stream).
    pub digest: u64,
}

impl ChannelOverheadMeasurement {
    /// Median paired lossy-over-reliable wall ratio, minus one — the
    /// per-arrival cost of arming the channel fault machinery at all.
    #[must_use]
    pub fn overhead(&self) -> f64 {
        self.median_lossy_ratio - 1.0
    }

    /// Events per second under the reliable channel.
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.reliable_wall_seconds
    }
}

/// Measures the channel overhead: the `cascading-churn` workload under
/// the default reliable channel and under a zero-loss lossy channel,
/// interleaved within each round with the mode order mirrored every
/// other round (see [`measure_probe_overhead`] for why). The two modes'
/// completion-time digests are asserted identical — the dedicated-
/// channel-stream contract, measured: arming the model must not perturb
/// one legacy trajectory.
///
/// # Panics
/// Panics if `repeat == 0` or the two modes sample different
/// trajectories.
#[must_use]
pub fn measure_channel_overhead(
    quick: bool,
    threads: usize,
    seed: u64,
    repeat: u32,
) -> ChannelOverheadMeasurement {
    assert!(repeat > 0, "need at least one measurement round");
    let w = workloads()
        .into_iter()
        .find(|w| w.name == "cascading-churn")
        .expect("cascading-churn is in the suite");
    let reps = if quick { w.quick_reps } else { w.reps };
    let lossy_config = w.config.clone().with_channel_model(ChannelModel::Lossy {
        loss_probability: 0.0,
        on_down: DownPolicy::Enqueue,
        max_retries: 0,
        retry_backoff: 0.1,
    });
    let opts = SimOptions::default();
    let mut m: Option<ChannelOverheadMeasurement> = None;
    let mut ratios: Vec<f64> = Vec::new();
    for round in 0..repeat * 2 {
        let timed = |config: &SystemConfig| {
            let start = Instant::now();
            let est = run_replications(
                config,
                &|_| w.policy.build(config).expect("validated"),
                reps,
                seed,
                threads,
                opts,
            );
            (est, start.elapsed().as_secs_f64())
        };
        let (reliable, reliable_wall, lossy, lossy_wall) = if round % 2 == 0 {
            let (reliable, rw) = timed(&w.config);
            let (lossy, lw) = timed(&lossy_config);
            (reliable, rw, lossy, lw)
        } else {
            let (lossy, lw) = timed(&lossy_config);
            let (reliable, rw) = timed(&w.config);
            (reliable, rw, lossy, lw)
        };
        assert_eq!(
            reliable.completion_times, lossy.completion_times,
            "channel-overhead: arming a zero-loss channel changed the \
             sampled trajectories"
        );
        assert_eq!(
            reliable.total_events, lossy.total_events,
            "channel-overhead: arming a zero-loss channel changed the \
             event count"
        );
        assert!(
            lossy.mean_tasks_lost == 0.0 && lossy.mean_retries == 0.0,
            "zero-loss lossy mode must lose and retry nothing"
        );
        ratios.push(lossy_wall / reliable_wall);
        let round = ChannelOverheadMeasurement {
            reps,
            events: reliable.total_events,
            reliable_wall_seconds: reliable_wall,
            lossy_wall_seconds: lossy_wall,
            median_lossy_ratio: 0.0, // filled in below, once every round is in
            digest: digest_f64s(&reliable.completion_times),
        };
        m = match m {
            None => Some(round),
            Some(mut prev) => {
                assert_eq!(
                    prev.digest, round.digest,
                    "channel-overhead: rounds disagree"
                );
                prev.reliable_wall_seconds =
                    prev.reliable_wall_seconds.min(round.reliable_wall_seconds);
                prev.lossy_wall_seconds = prev.lossy_wall_seconds.min(round.lossy_wall_seconds);
                Some(prev)
            }
        };
    }
    let mut m = m.expect("repeat >= 1");
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite wall ratios"));
    let mid = ratios.len() / 2;
    m.median_lossy_ratio = if ratios.len().is_multiple_of(2) {
        (ratios[mid - 1] + ratios[mid]) / 2.0
    } else {
        ratios[mid]
    };
    m
}

/// The run-level flags a report records alongside its measurements.
#[derive(Clone, Copy, Debug)]
pub struct RunInfo {
    /// Quick (CI) replication counts vs full.
    pub quick: bool,
    /// Worker threads (0 = auto).
    pub threads: usize,
    /// Master seed of every workload.
    pub seed: u64,
    /// Measurement rounds per workload (fastest kept).
    pub repeat: u32,
}

/// Fixed thread count of the campaign-cache workload: the invariant
/// under test is *what* runs (zero cells warm), not scheduling, so a
/// small fixed pool keeps the wall numbers comparable across machines.
pub const CAMPAIGN_CACHE_THREADS: usize = 4;

/// The campaign-cache workload's cold vs warm comparison: a campaign
/// directory built from scratch and run to completion (cold), then
/// re-run unchanged (warm — the content-addressed cache must satisfy
/// every cell, simulating **zero** replications).
#[derive(Clone, Debug)]
pub struct CampaignCacheMeasurement {
    /// Cells in the campaign grid.
    pub cells: usize,
    /// Replications the cold run simulated.
    pub reps: u64,
    /// Replications the warm run simulated (the cache contract: 0).
    pub warm_reps: u64,
    /// Worker threads ([`CAMPAIGN_CACHE_THREADS`]).
    pub threads: usize,
    /// Cold wall clock (best of `repeat` fresh-directory runs).
    pub cold_wall_seconds: f64,
    /// Warm wall clock (best of `repeat` re-runs on the finished dir).
    pub warm_wall_seconds: f64,
    /// FNV-1a digest of the final CSV bytes (byte-identical cold/warm).
    pub digest: u64,
}

impl CampaignCacheMeasurement {
    /// Cold-over-warm wall-clock ratio — the value the ≥ 10× acceptance
    /// floor gates.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.warm_wall_seconds > 0.0 {
            self.cold_wall_seconds / self.warm_wall_seconds
        } else {
            f64::INFINITY
        }
    }
}

/// Pinned campaign-cache CSV digests, `(quick, full)`.
pub const EXPECTED_CAMPAIGN_CACHE_DIGESTS: (u64, u64) =
    (0xbc4d_9e85_1830_3116, 0x892a_76a4_41c1_cde4);

/// The pinned campaign-cache digest for the mode.
#[must_use]
pub fn expected_campaign_cache_digest(quick: bool) -> u64 {
    if quick {
        EXPECTED_CAMPAIGN_CACHE_DIGESTS.0
    } else {
        EXPECTED_CAMPAIGN_CACHE_DIGESTS.1
    }
}

/// The campaign spec of the campaign-cache workload: paper-fig5 swept
/// over a failure-rate axis with a 2-policy set under tight sequential
/// stopping, so the cold run caps out and the cell count is stable.
fn campaign_cache_spec(quick: bool, seed: u64) -> String {
    let (r0, max_reps) = if quick { (8, 64) } else { (16, 256) };
    format!(
        "scenarios = [\"paper-fig5\"]\n\
         policies = [\"lbp1-optimal\", \"none\"]\n\
         axis = [\"failure-scale=1,1.25,1.5,1.75,2\"]\n\
         seed = {seed}\n\
         \n\
         [stopping]\n\
         tolerance = 0.05\n\
         r0 = {r0}\n\
         max_reps = {max_reps}\n\
         \n\
         [fields]\n\
         workload = \"campaign-cache\"\n"
    )
}

/// Measures the campaign cache: best-of-`repeat` cold runs (fresh
/// directory each time) against best-of-`repeat` warm re-runs of the
/// finished directory, with the final CSV digested for the drift gate.
///
/// # Panics
/// On campaign failures, or if a warm run simulates any replication.
#[must_use]
pub fn measure_campaign_cache(quick: bool, seed: u64, repeat: u32) -> CampaignCacheMeasurement {
    use churnbal_lab::campaign::{Campaign, CampaignRunOptions};

    let dir = std::env::temp_dir().join(format!(
        "churnbal-campaign-cache-{}-{}",
        if quick { "quick" } else { "full" },
        std::process::id()
    ));
    let opts = CampaignRunOptions {
        threads: CAMPAIGN_CACHE_THREADS,
        chunk: 0,
        max_cells: None,
    };
    let spec = campaign_cache_spec(quick, seed);

    let mut cells = 0;
    let mut reps = 0;
    let mut cold_wall_seconds = f64::INFINITY;
    for _ in 0..repeat.max(1) {
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create campaign dir");
        std::fs::write(dir.join("campaign-cache.toml"), &spec).expect("write spec");
        let start = Instant::now();
        let mut campaign = Campaign::load(&dir).expect("campaign loads");
        let report = campaign.run(&opts).expect("cold campaign run");
        cold_wall_seconds = cold_wall_seconds.min(start.elapsed().as_secs_f64());
        assert_eq!(report.cells_done, report.cells_total, "cold run finishes");
        cells = report.cells_total;
        reps = report.reps_run;
    }

    let mut warm_reps = 0;
    let mut warm_wall_seconds = f64::INFINITY;
    for _ in 0..repeat.max(1) {
        let start = Instant::now();
        let mut campaign = Campaign::load(&dir).expect("campaign reloads");
        let report = campaign.run(&opts).expect("warm campaign run");
        warm_wall_seconds = warm_wall_seconds.min(start.elapsed().as_secs_f64());
        assert_eq!(
            report.reps_run, 0,
            "warm re-run must simulate zero replications"
        );
        warm_reps = report.reps_run;
    }

    let csv = std::fs::read(dir.join("out").join("campaign-cache.csv")).expect("campaign csv");
    let mut h = churnbal_stochastic::Fnv1a::new();
    h.update(&csv);
    let digest = h.finish();
    let _ = std::fs::remove_dir_all(&dir);
    CampaignCacheMeasurement {
        cells,
        reps,
        warm_reps,
        threads: CAMPAIGN_CACHE_THREADS,
        cold_wall_seconds,
        warm_wall_seconds,
        digest,
    }
}

/// The optional per-workload sections of the JSON report, one slot per
/// specialized workload; a slot is `Some` when its workload ran.
#[derive(Default)]
pub struct ExtraSections<'a> {
    pub sweep: Option<&'a SweepGridMeasurement>,
    pub compare: Option<&'a CompareGridMeasurement>,
    pub large: Option<&'a LargeFleetMeasurement>,
    pub probe: Option<&'a ProbeOverheadMeasurement>,
    pub channel: Option<&'a ChannelOverheadMeasurement>,
    pub campaign: Option<&'a CampaignCacheMeasurement>,
}

/// Renders the report as pretty-printed JSON (no external deps; every
/// field is a number or a fixed-format string).
#[must_use]
pub fn to_json(measurements: &[Measurement], extras: &ExtraSections<'_>, info: RunInfo) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"churnbal-perfreport/7\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if info.quick { "quick" } else { "full" }
    ));
    out.push_str(&format!("  \"threads\": {},\n", info.threads));
    out.push_str(&format!("  \"seed\": {},\n", info.seed));
    out.push_str(&format!("  \"repeat\": {},\n", info.repeat));
    out.push_str("  \"workloads\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"reps\": {}, \"events\": {}, \"wall_seconds\": {:?}, \
             \"events_per_sec\": {:.0}, \"mean_completion\": {:?}, \"digest\": \"{:#018x}\"}}{}\n",
            m.name,
            m.reps,
            m.events,
            m.wall_seconds,
            m.events_per_sec(),
            m.mean_completion,
            m.digest,
            if i + 1 < measurements.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    if let Some(s) = extras.sweep {
        out.push_str(&format!(
            "  \"sweep_grid\": {{\"points\": {}, \"reps\": {}, \"events\": {}, \
             \"threads\": {}, \"wall_seconds\": {:?}, \"sequential_wall_seconds\": {:?}, \
             \"speedup\": {:.2}, \"digest\": \"{:#018x}\"}},\n",
            s.points,
            s.reps,
            s.events,
            s.threads,
            s.wall_seconds,
            s.sequential_wall_seconds,
            s.speedup(),
            s.digest,
        ));
    }
    if let Some(c) = extras.compare {
        out.push_str(&format!(
            "  \"compare_grid\": {{\"points\": {}, \"policies\": {}, \"reps\": {}, \
             \"events\": {}, \"threads\": {}, \"wall_seconds\": {:?}, \
             \"sequential_wall_seconds\": {:?}, \"speedup\": {:.2}, \
             \"digest\": \"{:#018x}\"}},\n",
            c.points,
            c.policies,
            c.reps,
            c.events,
            c.threads,
            c.wall_seconds,
            c.sequential_wall_seconds,
            c.speedup(),
            c.digest,
        ));
    }
    if let Some(l) = extras.large {
        out.push_str(&format!(
            "  \"large_fleet\": {{\"nodes\": {}, \"reps\": {}, \"events\": {}, \
             \"wall_seconds\": {:?}, \"events_per_sec\": {:.0}, \"baseline_events\": {}, \
             \"baseline_wall_seconds\": {:?}, \"baseline_events_per_sec\": {:.0}, \
             \"speedup\": {:.2}, \"digest\": \"{:#018x}\", \"baseline_digest\": \"{:#018x}\"}},\n",
            l.nodes,
            l.reps,
            l.events,
            l.wall_seconds,
            l.events_per_sec(),
            l.baseline_events,
            l.baseline_wall_seconds,
            l.baseline_events_per_sec(),
            l.speedup(),
            l.digest,
            l.baseline_digest,
        ));
    }
    if let Some(p) = extras.probe {
        out.push_str(&format!(
            "  \"probe_overhead\": {{\"reps\": {}, \"events\": {}, \"probe_ticks\": {}, \
             \"off_wall_seconds\": {:?}, \"armed_wall_seconds\": {:?}, \
             \"armed_overhead\": {:.4}, \"digest\": \"{:#018x}\"}},\n",
            p.reps,
            p.events,
            p.probe_ticks,
            p.off_wall_seconds,
            p.armed_wall_seconds,
            p.overhead(),
            p.digest,
        ));
    }
    if let Some(c) = extras.channel {
        out.push_str(&format!(
            "  \"channel_overhead\": {{\"reps\": {}, \"events\": {}, \
             \"reliable_wall_seconds\": {:?}, \"lossy_wall_seconds\": {:?}, \
             \"lossy_overhead\": {:.4}, \"digest\": \"{:#018x}\"}},\n",
            c.reps,
            c.events,
            c.reliable_wall_seconds,
            c.lossy_wall_seconds,
            c.overhead(),
            c.digest,
        ));
    }
    if let Some(c) = extras.campaign {
        out.push_str(&format!(
            "  \"campaign_cache\": {{\"cells\": {}, \"reps\": {}, \"warm_reps\": {}, \
             \"threads\": {}, \"cold_wall_seconds\": {:?}, \"warm_wall_seconds\": {:?}, \
             \"speedup\": {:.2}, \"digest\": \"{:#018x}\"}},\n",
            c.cells,
            c.reps,
            c.warm_reps,
            c.threads,
            c.cold_wall_seconds,
            c.warm_wall_seconds,
            c.speedup(),
            c.digest,
        ));
    }
    let events: u64 = measurements.iter().map(|m| m.events).sum();
    let wall: f64 = measurements.iter().map(|m| m.wall_seconds).sum();
    out.push_str(&format!(
        "  \"total\": {{\"events\": {}, \"wall_seconds\": {:?}, \"events_per_sec\": {:.0}}}\n",
        events,
        wall,
        events as f64 / wall
    ));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_table_is_self_consistent() {
        for w in workloads() {
            w.policy
                .validate_for(&w.config)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(w.quick_reps < w.reps, "{}: quick must be cheaper", w.name);
            assert!(expected_digest(w.name, true).is_some(), "{}", w.name);
            assert!(expected_digest(w.name, false).is_some(), "{}", w.name);
        }
    }

    #[test]
    fn quick_digests_match_their_pins() {
        // The full-mode digests are asserted by `perfreport` itself (CI
        // runs `--quick`); here the cheap mode keeps `cargo test` honest.
        for w in workloads() {
            let m = measure(&w, true, 0, PERF_SEED);
            assert_eq!(
                Some(m.digest),
                expected_digest(w.name, true),
                "{}: sample path drifted (digest {:#018x})",
                w.name,
                m.digest
            );
        }
    }

    #[test]
    fn json_report_has_every_workload() {
        let ms: Vec<Measurement> = workloads()
            .iter()
            .map(|w| measure(w, true, 0, PERF_SEED))
            .collect();
        let sweep = measure_sweep_grid(true, PERF_SEED, 1);
        let compare = measure_compare_grid(true, PERF_SEED, 1);
        // A hand-built large-fleet cell: the JSON rendering is under test
        // here, not the measurement (the digest test below runs that).
        let large = LargeFleetMeasurement {
            nodes: 2500,
            reps: 1,
            events: 200_000,
            wall_seconds: 0.1,
            baseline_events: 180_000,
            baseline_wall_seconds: 0.9,
            digest: 0xdead,
            baseline_digest: 0xbeef,
        };
        // Hand-built like the large-fleet cell: the JSON rendering is the
        // subject, the real measurement runs in the digest test below.
        let probe = ProbeOverheadMeasurement {
            reps: 50,
            events: 1_000_000,
            probe_ticks: 7000,
            off_wall_seconds: 0.5,
            armed_wall_seconds: 0.505,
            median_armed_ratio: 1.01,
            digest: 0xcafe,
        };
        // Hand-built as well: the JSON rendering is the subject.
        let channel = ChannelOverheadMeasurement {
            reps: 50,
            events: 1_000_000,
            reliable_wall_seconds: 0.5,
            lossy_wall_seconds: 0.503,
            median_lossy_ratio: 1.006,
            digest: 0xf00d,
        };
        // Hand-built as well: the JSON rendering is the subject.
        let campaign = CampaignCacheMeasurement {
            cells: 10,
            reps: 640,
            warm_reps: 0,
            threads: CAMPAIGN_CACHE_THREADS,
            cold_wall_seconds: 0.4,
            warm_wall_seconds: 0.002,
            digest: 0xfeed,
        };
        let json = to_json(
            &ms,
            &ExtraSections {
                sweep: Some(&sweep),
                compare: Some(&compare),
                large: Some(&large),
                probe: Some(&probe),
                channel: Some(&channel),
                campaign: Some(&campaign),
            },
            RunInfo {
                quick: true,
                threads: 0,
                seed: PERF_SEED,
                repeat: 1,
            },
        );
        for w in workloads() {
            assert!(json.contains(w.name), "{json}");
        }
        assert!(json.contains("\"schema\": \"churnbal-perfreport/7\""));
        assert!(json.contains("\"sweep_grid\""));
        assert!(json.contains("\"compare_grid\""));
        assert!(json.contains("\"large_fleet\""));
        assert!(json.contains("\"probe_overhead\""));
        assert!(json.contains("\"channel_overhead\""));
        assert!(json.contains("\"campaign_cache\""));
        assert!(json.contains("\"warm_reps\": 0"), "{json}");
        assert!(json.contains("\"speedup\": 200.00"), "{json}");
        assert!(json.contains("\"lossy_overhead\": 0.0060"), "{json}");
        assert!(json.contains("\"armed_overhead\": 0.0100"), "{json}");
        assert!(json.contains("\"speedup\": 10.00"), "{json}");
        assert!(json.contains("\"policies\": 3"));
        assert!(json.contains("\"repeat\": 1"));
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"total\""));
    }

    #[test]
    fn campaign_cache_digest_matches_its_pin() {
        // `measure_campaign_cache` itself asserts the warm run simulates
        // zero replications; this additionally pins the CSV bytes the
        // cache reproduces.
        let m = measure_campaign_cache(true, PERF_SEED, 1);
        assert_eq!(
            m.digest,
            expected_campaign_cache_digest(true),
            "campaign-cache CSV drifted (digest {:#018x})",
            m.digest
        );
        assert_eq!(m.cells, 10);
        assert_eq!(m.warm_reps, 0);
        assert!(m.reps > 0);
    }

    #[test]
    fn compare_grid_digest_matches_its_pin() {
        // `measure_compare_grid` itself cross-checks the shared pass
        // against K sequential sweeps bit-exactly; this additionally pins
        // the sampled trajectories to their committed digest.
        let m = measure_compare_grid(true, PERF_SEED, 1);
        assert_eq!(
            m.digest,
            expected_compare_grid_digest(true),
            "compare-grid sample paths drifted (digest {:#018x})",
            m.digest
        );
        assert_eq!(m.points, 32);
        assert_eq!(m.policies, 3);
        assert_eq!(m.reps, 3 * 108);
        assert!(m.events > 0);
    }

    #[test]
    fn sweep_grid_digest_matches_its_pin() {
        // `measure_sweep_grid` itself cross-checks the scheduler against
        // the sequential-point baseline; this additionally pins the
        // sampled trajectories to their committed digest.
        let m = measure_sweep_grid(true, PERF_SEED, 1);
        assert_eq!(
            m.digest,
            expected_sweep_grid_digest(true),
            "sweep-grid sample paths drifted (digest {:#018x})",
            m.digest
        );
        assert_eq!(m.points, 32);
        assert_eq!(m.reps, 108);
        assert!(m.events > 0);
    }

    #[test]
    fn large_fleet_quick_digests_match_their_pins() {
        // Quick mode only (the 50×50 torus); the full 100×100 digests are
        // asserted by `perfreport` itself. Timing is not asserted here —
        // debug builds invert every perf ratio — only the trajectories.
        let m = measure_large_fleet(true, PERF_SEED, 1);
        assert_eq!(m.nodes, 2500);
        assert!(m.events > 0 && m.baseline_events > 0);
        assert_eq!(
            m.digest,
            expected_large_fleet_digest(true),
            "large-fleet sample paths drifted (digest {:#018x})",
            m.digest
        );
        assert_eq!(
            m.baseline_digest,
            expected_large_fleet_baseline_digest(true),
            "large-fleet baseline sample paths drifted (digest {:#018x})",
            m.baseline_digest
        );
    }

    #[test]
    fn probe_overhead_modes_sample_identical_pinned_paths() {
        // Timing is not asserted here — debug builds distort every ratio —
        // only the no-RNG contract: probes off and armed sample the same
        // trajectories, and they are the workload's pinned ones.
        let m = measure_probe_overhead(true, 0, PERF_SEED, 1);
        assert_eq!(
            Some(m.digest),
            expected_digest("cascading-churn", true),
            "arming the probe drifted the cascading-churn sample paths \
             (digest {:#018x})",
            m.digest
        );
        assert!(m.probe_ticks > 0);
        assert!(m.events > 0);
        assert!(
            m.median_armed_ratio > 0.0,
            "paired-ratio estimator left unfilled"
        );
    }

    #[test]
    fn channel_overhead_modes_sample_identical_pinned_paths() {
        // Timing is not asserted here — debug builds distort every ratio —
        // only the dedicated-stream contract: a zero-loss lossy channel
        // samples the workload's exact pinned reliable trajectories.
        let m = measure_channel_overhead(true, 0, PERF_SEED, 1);
        assert_eq!(
            Some(m.digest),
            expected_digest("cascading-churn", true),
            "arming a zero-loss channel drifted the cascading-churn sample \
             paths (digest {:#018x})",
            m.digest
        );
        assert!(m.events > 0);
        assert!(
            m.median_lossy_ratio > 0.0,
            "paired-ratio estimator left unfilled"
        );
    }

    #[test]
    fn large_fleet_configs_share_everything_but_the_topology() {
        let local = large_fleet_config(true);
        let global = large_fleet_global_config(true);
        assert!(local.topology().is_some());
        assert!(global.topology().is_none());
        assert_eq!(local.nodes, global.nodes);
        let (rows, cols) = large_fleet_dims(false);
        assert_eq!(rows * cols, 10_000, "full mode must reach 10^4 nodes");
    }

    #[test]
    fn sweep_grid_has_mixed_rep_counts() {
        let (configs, reps) = sweep_grid(false);
        assert_eq!(configs.len(), 96);
        assert_eq!(configs.len(), reps.len());
        assert!(reps.contains(&1) && reps.contains(&8), "{reps:?}");
        // The fine-grained shape the scheduler exists for: half the
        // points have fewer replications than the comparison's workers.
        let small = reps
            .iter()
            .filter(|&&r| r < SWEEP_GRID_THREADS as u64)
            .count();
        assert!(small * 2 >= reps.len(), "{reps:?}");
    }
}
