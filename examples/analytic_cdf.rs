//! Working with the completion-time *distribution* (not just the mean):
//! the Eq. (5) machinery as a library feature.
//!
//! ```text
//! cargo run --release --example analytic_cdf
//! ```
//!
//! Computes `P(T ≤ t)` for a deadline-driven question the mean cannot
//! answer: "which gain maximises the probability of finishing the
//! workload within 120 s?" — and shows it differs from the mean-optimal
//! gain.

use churnbal::prelude::*;

fn main() {
    let m0 = [100u32, 60];
    let params = TwoNodeParams::paper();
    let deadline = 120.0;
    let times: Vec<f64> = (0..=60).map(|i| f64::from(i) * 4.0).collect();

    println!("P(T <= {deadline} s) as a function of the LBP-1 gain, workload (100, 60)\n");
    println!("{:>6} {:>14} {:>18}", "K", "mean E[T] (s)", "P(T <= 120 s)");

    let ev = churnbal::model::mean::Lbp1Evaluator::new(&params, m0);
    let mut best_mean = (0.0, f64::INFINITY);
    let mut best_prob = (0.0, 0.0);
    for i in 0..=10 {
        let k = f64::from(i) / 10.0;
        let l = (k * f64::from(m0[0])).round() as u32;
        let mean = ev.mean(0, l, WorkState::BOTH_UP);
        let cdf = lbp1_cdf(&params, m0, 0, l, WorkState::BOTH_UP, &times);
        let p = cdf.eval(deadline);
        println!("{k:>6.2} {mean:>14.2} {p:>18.4}");
        if mean < best_mean.1 {
            best_mean = (k, mean);
        }
        if p > best_prob.1 {
            best_prob = (k, p);
        }
    }
    println!(
        "\nmean-optimal gain: K = {:.2} (E[T] = {:.2} s)",
        best_mean.0, best_mean.1
    );
    println!(
        "deadline-optimal gain: K = {:.2} (P(T <= {deadline}) = {:.4})",
        best_prob.0, best_prob.1
    );
    println!(
        "\nthe distribution view is exactly why §2.1.2 derives Eq. (5): risk-sensitive\n\
         scheduling needs more than the mean."
    );

    // And the no-failure comparison of Fig. 5 for one workload:
    let nofail = params.without_failures();
    let l = (best_mean.0 * f64::from(m0[0])).round() as u32;
    let c_fail = lbp1_cdf(&params, m0, 0, l, WorkState::BOTH_UP, &times);
    let c_ok = lbp1_cdf(&nofail, m0, 0, l, WorkState::BOTH_UP, &times);
    println!(
        "\nP(T <= t) with vs without churn (K = {:.2}):",
        best_mean.0
    );
    for &t in [60.0, 90.0, 120.0, 150.0, 180.0].iter() {
        println!(
            "  t = {t:>5.0} s: failure {:>6.4} vs no-failure {:>6.4}",
            c_fail.eval(t),
            c_ok.eval(t)
        );
    }
}
