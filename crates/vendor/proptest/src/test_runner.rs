//! Deterministic generation state for the stub runner.

/// Runner configuration; only `cases` is meaningful in the stub.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated inputs per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property for `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; the stub trades a little coverage
        // for suite latency while staying well above smoke-test territory.
        ProptestConfig { cases: 64 }
    }
}

/// SplitMix64-based generator: statistically fine for test-case generation
/// and fully deterministic from the test's name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the stream from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 uniform random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; `n` must be positive.
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % n
    }
}
