//! Property-based tests of the analytical model over random parameter
//! sets: the recursion must agree with the independent CTMC solver, and
//! structural monotonicities must hold.

use churnbal_model::bridge::lbp1_mean_exact;
use churnbal_model::mean::{lbp1_mean, HatTable};
use churnbal_model::{DelayModel, TwoNodeParams, WorkState};
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = TwoNodeParams> {
    (
        0.2f64..5.0,
        0.2f64..5.0,
        0.0f64..0.3,
        0.0f64..0.3,
        0.02f64..0.5,
        0.02f64..0.5,
        0.005f64..1.0,
    )
        .prop_map(|(d1, d2, f1, f2, r1, r2, delay)| {
            TwoNodeParams::new([d1, d2], [f1, f2], [r1, r2], DelayModel::per_task(delay))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Eq. (4) recursion == exact CTMC absorption, for arbitrary rates,
    /// workloads, transfer sizes and initial work states.
    #[test]
    fn recursion_equals_ctmc(
        params in arb_params(),
        m1 in 0u32..8,
        m2 in 0u32..8,
        l_frac in 0.0f64..1.0,
        sender in 0usize..2,
    ) {
        let m0 = [m1, m2];
        let l = (l_frac * f64::from(m0[sender])).floor() as u32;
        let rec = lbp1_mean(&params, m0, sender, l, WorkState::BOTH_UP);
        let exact = lbp1_mean_exact(&params, m0, sender, l, WorkState::BOTH_UP);
        prop_assert!(
            (rec - exact).abs() < 1e-6 * exact.max(1.0),
            "recursion {} vs ctmc {}", rec, exact
        );
    }

    /// More work never finishes sooner (monotonicity on the lattice).
    #[test]
    fn mean_monotone_in_workload(params in arb_params(), m in 1u32..20) {
        let hat = HatTable::build(&params, [m, m]);
        let smaller = hat.get(WorkState::BOTH_UP, [m - 1, m]);
        let larger = hat.get(WorkState::BOTH_UP, [m, m]);
        prop_assert!(larger > smaller - 1e-12);
    }

    /// Faster service never hurts.
    #[test]
    fn mean_monotone_in_service_rate(params in arb_params(), boost in 1.01f64..3.0) {
        let mut faster = params;
        faster.service[0] *= boost;
        let a = HatTable::build(&params, [6, 6]).get(WorkState::BOTH_UP, [6, 6]);
        let b = HatTable::build(&faster, [6, 6]).get(WorkState::BOTH_UP, [6, 6]);
        prop_assert!(b <= a + 1e-9, "speeding node 1 up increased E[T]: {} -> {}", a, b);
    }

    /// Starting with a node down never helps.
    #[test]
    fn down_start_is_never_faster(params in arb_params()) {
        prop_assume!(params.churns(0));
        let hat = HatTable::build(&params, [5, 5]);
        let up = hat.get(WorkState::BOTH_UP, [5, 5]);
        let down = hat.get(WorkState::new(false, true), [5, 5]);
        prop_assert!(down >= up - 1e-9);
    }

    /// The completion-time CDF is within [0,1], monotone, and its
    /// high-quantile mass is consistent with the mean (Markov bound).
    #[test]
    fn cdf_is_a_distribution(params in arb_params(), m1 in 1u32..6, m2 in 0u32..6) {
        let mean = lbp1_mean(&params, [m1, m2], 0, 0, WorkState::BOTH_UP);
        let horizon = mean * 10.0;
        let times: Vec<f64> = (0..=100).map(|i| horizon * f64::from(i) / 100.0).collect();
        let cdf = churnbal_model::lbp1_cdf(&params, [m1, m2], 0, 0, WorkState::BOTH_UP, &times);
        let mut prev = 0.0;
        for &v in &cdf.values {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&v));
            prop_assert!(v >= prev - 1e-9);
            prev = v;
        }
        // Markov: P(T > 10·E[T]) <= 0.1 ⇒ CDF(10·E[T]) >= 0.9.
        prop_assert!(cdf.coverage() >= 0.9 - 1e-6);
    }

    /// Availability is a probability and matches the rate definition.
    #[test]
    fn availability_is_probability(params in arb_params()) {
        for i in 0..2 {
            let a = params.availability(i);
            prop_assert!((0.0..=1.0).contains(&a));
            if params.churns(i) {
                let expect = params.recovery[i] / (params.failure[i] + params.recovery[i]);
                prop_assert!((a - expect).abs() < 1e-12);
            } else {
                prop_assert_eq!(a, 1.0);
            }
        }
    }
}
