//! Queue and work-state traces — the raw material of the paper's Fig. 4.

/// Step-function traces of every node's queue length and up/down state.
///
/// Queue series record `(time, queue_len_after_change)`; each node's series
/// starts with its `t = 0` value. Work-state series record
/// `(time, is_up_after_change)` transitions only.
#[derive(Clone, Debug, Default)]
pub struct QueueTrace {
    queue: Vec<Vec<(f64, u32)>>,
    state: Vec<Vec<(f64, bool)>>,
}

impl QueueTrace {
    /// Creates a trace for `n` nodes with the given initial queue lengths.
    #[must_use]
    pub fn new(initial: &[u32]) -> Self {
        Self {
            queue: initial.iter().map(|&q| vec![(0.0, q)]).collect(),
            state: initial.iter().map(|_| vec![(0.0, true)]).collect(),
        }
    }

    /// Records a queue change.
    pub fn record_queue(&mut self, time: f64, node: usize, queue: u32) {
        let series = &mut self.queue[node];
        if let Some(&(_, last)) = series.last() {
            if last == queue {
                return;
            }
        }
        series.push((time, queue));
    }

    /// Records an up/down change. Consecutive identical states are
    /// deduplicated, like [`QueueTrace::record_queue`] — a shock model
    /// re-reporting a node's current state must not grow the series.
    pub fn record_state(&mut self, time: f64, node: usize, up: bool) {
        let series = &mut self.state[node];
        if let Some(&(_, last)) = series.last() {
            if last == up {
                return;
            }
        }
        series.push((time, up));
    }

    /// Number of traced nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.queue.len()
    }

    /// The queue step function of `node` as `(time, value)` breakpoints.
    #[must_use]
    pub fn queue_series(&self, node: usize) -> &[(f64, u32)] {
        &self.queue[node]
    }

    /// The up/down transitions of `node`.
    #[must_use]
    pub fn state_series(&self, node: usize) -> &[(f64, bool)] {
        &self.state[node]
    }

    /// Queue length of `node` at time `t` (step interpolation).
    #[must_use]
    pub fn queue_at(&self, node: usize, t: f64) -> u32 {
        let series = &self.queue[node];
        let idx = series.partition_point(|&(time, _)| time <= t);
        if idx == 0 {
            series[0].1
        } else {
            series[idx - 1].1
        }
    }

    /// Samples the queue of `node` on a uniform grid — convenient for
    /// plotting Fig.-4-style curves.
    ///
    /// Degenerate grids clamp instead of panicking: `points == 0` yields
    /// an empty series and `points == 1` samples `t = 0` only.
    #[must_use]
    pub fn sample_queue(&self, node: usize, t_max: f64, points: usize) -> Vec<(f64, u32)> {
        (0..points)
            .map(|i| {
                let t = if i == 0 {
                    0.0
                } else {
                    t_max * i as f64 / (points - 1) as f64
                };
                (t, self.queue_at(node, t))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_queries_steps() {
        let mut tr = QueueTrace::new(&[10, 5]);
        tr.record_queue(1.0, 0, 9);
        tr.record_queue(2.5, 0, 8);
        assert_eq!(tr.queue_at(0, 0.0), 10);
        assert_eq!(tr.queue_at(0, 1.0), 9);
        assert_eq!(tr.queue_at(0, 2.0), 9);
        assert_eq!(tr.queue_at(0, 3.0), 8);
        assert_eq!(tr.queue_at(1, 100.0), 5);
    }

    #[test]
    fn deduplicates_unchanged_values() {
        let mut tr = QueueTrace::new(&[3]);
        // The constructor expects >= 1 node; single-node traces are fine
        // even though the simulator requires two.
        tr.record_queue(1.0, 0, 3);
        assert_eq!(tr.queue_series(0).len(), 1);
        tr.record_queue(2.0, 0, 2);
        assert_eq!(tr.queue_series(0).len(), 2);
    }

    #[test]
    fn state_series_records_transitions() {
        let mut tr = QueueTrace::new(&[1, 1]);
        tr.record_state(4.0, 1, false);
        tr.record_state(9.0, 1, true);
        assert_eq!(
            tr.state_series(1),
            &[(0.0, true), (4.0, false), (9.0, true)]
        );
    }

    #[test]
    fn state_series_deduplicates_repeated_states() {
        let mut tr = QueueTrace::new(&[1]);
        // Nodes start up; a redundant "up" report must not grow the series.
        tr.record_state(2.0, 0, true);
        assert_eq!(tr.state_series(0), &[(0.0, true)]);
        tr.record_state(4.0, 0, false);
        tr.record_state(5.0, 0, false);
        tr.record_state(9.0, 0, true);
        assert_eq!(
            tr.state_series(0),
            &[(0.0, true), (4.0, false), (9.0, true)]
        );
    }

    #[test]
    fn sampling_degenerate_grids_is_safe() {
        let mut tr = QueueTrace::new(&[4]);
        tr.record_queue(5.0, 0, 2);
        assert_eq!(tr.sample_queue(0, 10.0, 0), vec![]);
        assert_eq!(tr.sample_queue(0, 10.0, 1), vec![(0.0, 4)]);
    }

    #[test]
    fn sampling_grid_covers_range() {
        let mut tr = QueueTrace::new(&[4, 0]);
        tr.record_queue(5.0, 0, 2);
        let s = tr.sample_queue(0, 10.0, 11);
        assert_eq!(s.len(), 11);
        assert_eq!(s[0], (0.0, 4));
        assert_eq!(s[10], (10.0, 2));
        assert_eq!(s[5], (5.0, 2));
    }
}
