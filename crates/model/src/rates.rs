//! Model parameters: per-node rates and the load-dependent transfer delay.

/// Load-dependent transfer-delay model.
///
/// §4 of the paper measures the mean batch-transfer delay to grow linearly
/// with the number of tasks `L` (Fig. 2, bottom) with ≈ 0.02 s per task, and
/// approximates the delay as exponentially distributed. The analysis then
/// uses a single exponential with rate `λ_{ji} = 1 / mean(L)`.
///
/// `mean(L) = fixed + per_task · L`. The paper's model corresponds to
/// `fixed = 0`; the test-bed simulator uses a small positive `fixed` to
/// reproduce the "slight shift" the authors observed in the empirical pdf.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DelayModel {
    /// Load-independent part of the mean delay, seconds.
    pub fixed: f64,
    /// Mean seconds per transferred task (the paper's 0.02 s/task).
    pub per_task: f64,
}

impl DelayModel {
    /// Creates a delay model.
    ///
    /// # Panics
    /// Panics if either component is negative/non-finite or both are zero
    /// (a zero-mean transfer delay has an undefined exponential rate; model
    /// an instantaneous transfer by adding the load to the receiver's
    /// initial queue instead).
    #[must_use]
    pub fn new(fixed: f64, per_task: f64) -> Self {
        assert!(
            fixed.is_finite() && fixed >= 0.0,
            "fixed delay must be >= 0"
        );
        assert!(
            per_task.is_finite() && per_task >= 0.0,
            "per-task delay must be >= 0"
        );
        assert!(
            fixed + per_task > 0.0,
            "delay model cannot be identically zero"
        );
        Self { fixed, per_task }
    }

    /// Pure per-task model (the paper's analytical assumption).
    #[must_use]
    pub fn per_task(per_task: f64) -> Self {
        Self::new(0.0, per_task)
    }

    /// Mean delay for transferring `l` tasks.
    #[must_use]
    pub fn mean(&self, l: u32) -> f64 {
        self.fixed + self.per_task * f64::from(l)
    }

    /// Exponential rate `λ_{ji}` of the batch transfer of `l ≥ 1` tasks.
    ///
    /// # Panics
    /// Panics for `l = 0` (no transfer, no rate).
    #[must_use]
    pub fn rate(&self, l: u32) -> f64 {
        assert!(l > 0, "a zero-task transfer has no delay rate");
        let m = self.mean(l);
        assert!(m > 0.0, "delay mean must be positive");
        1.0 / m
    }
}

/// Full parameter set of the two-node model (§2 of the paper).
///
/// * `service[i]` — `λ_{d_i}`, tasks per second (1.08 and 1.86 in §4);
/// * `failure[i]` — `λ_{f_i}`, failures per second (1/20 in §4); zero
///   disables churn for that node (the "no-failure case");
/// * `recovery[i]` — `λ_{r_i}`, recoveries per second (1/10 and 1/20);
/// * `delay` — the transfer-delay model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TwoNodeParams {
    /// Service rates `λ_d` (tasks/s).
    pub service: [f64; 2],
    /// Failure rates `λ_f` (1/s); `0` = the node never fails.
    pub failure: [f64; 2],
    /// Recovery rates `λ_r` (1/s); must be positive wherever `failure > 0`.
    pub recovery: [f64; 2],
    /// Load-transfer delay model.
    pub delay: DelayModel,
}

impl TwoNodeParams {
    /// Validates and constructs a parameter set.
    ///
    /// # Panics
    /// Panics if any service rate is non-positive, any failure/recovery
    /// rate is negative, or a node can fail (`failure > 0`) but never
    /// recover (`recovery = 0`) — its expected completion time would be
    /// infinite.
    #[must_use]
    pub fn new(
        service: [f64; 2],
        failure: [f64; 2],
        recovery: [f64; 2],
        delay: DelayModel,
    ) -> Self {
        for i in 0..2 {
            assert!(
                service[i] > 0.0 && service[i].is_finite(),
                "service rate of node {i} must be positive"
            );
            assert!(
                failure[i] >= 0.0 && failure[i].is_finite(),
                "failure rate of node {i} must be >= 0"
            );
            assert!(
                recovery[i] >= 0.0 && recovery[i].is_finite(),
                "recovery rate of node {i} must be >= 0"
            );
            assert!(
                failure[i] == 0.0 || recovery[i] > 0.0,
                "node {i} can fail but never recovers — completion time is infinite"
            );
        }
        Self {
            service,
            failure,
            recovery,
            delay,
        }
    }

    /// The exact parameter set of the paper's §4 experiments:
    /// `λ_d = (1.08, 1.86)`, mean failure time 20 s for both nodes, mean
    /// recovery times (10 s, 20 s), mean transfer delay 0.02 s per task.
    #[must_use]
    pub fn paper() -> Self {
        Self::new(
            [1.08, 1.86],
            [1.0 / 20.0, 1.0 / 20.0],
            [1.0 / 10.0, 1.0 / 20.0],
            DelayModel::per_task(0.02),
        )
    }

    /// Same node speeds and delay but churn disabled — the paper's
    /// "no failure case" reference curves.
    #[must_use]
    pub fn paper_no_failure() -> Self {
        let mut p = Self::paper();
        p.failure = [0.0, 0.0];
        p.recovery = [0.0, 0.0];
        p
    }

    /// Copy with churn disabled on both nodes.
    #[must_use]
    pub fn without_failures(&self) -> Self {
        Self {
            failure: [0.0, 0.0],
            recovery: [0.0, 0.0],
            ..*self
        }
    }

    /// Copy with a different mean per-task delay (Table 3 sweeps this).
    #[must_use]
    pub fn with_per_task_delay(&self, per_task: f64) -> Self {
        Self {
            delay: DelayModel::new(self.delay.fixed, per_task),
            ..*self
        }
    }

    /// True when node `i` participates in churn (`λ_f > 0`).
    #[must_use]
    pub fn churns(&self, i: usize) -> bool {
        self.failure[i] > 0.0
    }

    /// Long-run probability that node `i` is up:
    /// `λ_r / (λ_f + λ_r)` (used by Eq. 8); 1 for non-churning nodes.
    #[must_use]
    pub fn availability(&self, i: usize) -> f64 {
        if self.churns(i) {
            self.recovery[i] / (self.failure[i] + self.recovery[i])
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_model_paper_values() {
        let d = DelayModel::per_task(0.02);
        assert!((d.mean(100) - 2.0).abs() < 1e-12);
        assert!((d.rate(50) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn delay_model_with_fixed_part() {
        let d = DelayModel::new(0.005, 0.02);
        assert!((d.mean(0) - 0.005).abs() < 1e-12);
        assert!((d.mean(10) - 0.205).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero-task transfer")]
    fn rate_of_zero_tasks_panics() {
        let _ = DelayModel::per_task(0.02).rate(0);
    }

    #[test]
    #[should_panic(expected = "identically zero")]
    fn all_zero_delay_rejected() {
        let _ = DelayModel::new(0.0, 0.0);
    }

    #[test]
    fn paper_params_match_section_4() {
        let p = TwoNodeParams::paper();
        assert_eq!(p.service, [1.08, 1.86]);
        assert!((1.0 / p.failure[0] - 20.0).abs() < 1e-9);
        assert!((1.0 / p.recovery[0] - 10.0).abs() < 1e-9);
        assert!((1.0 / p.recovery[1] - 20.0).abs() < 1e-9);
        // availabilities quoted in our DESIGN notes: 2/3 and 1/2
        assert!((p.availability(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((p.availability(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn no_failure_variant_disables_churn() {
        let p = TwoNodeParams::paper_no_failure();
        assert!(!p.churns(0) && !p.churns(1));
        assert_eq!(p.availability(0), 1.0);
        let q = TwoNodeParams::paper().without_failures();
        assert_eq!(p, q);
    }

    #[test]
    fn delay_override() {
        let p = TwoNodeParams::paper().with_per_task_delay(1.0);
        assert!((p.delay.mean(3) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "never recovers")]
    fn failing_without_recovery_rejected() {
        let _ = TwoNodeParams::new(
            [1.0, 1.0],
            [0.1, 0.0],
            [0.0, 0.0],
            DelayModel::per_task(0.02),
        );
    }

    #[test]
    #[should_panic(expected = "service rate")]
    fn zero_service_rejected() {
        let _ = TwoNodeParams::new(
            [0.0, 1.0],
            [0.0, 0.0],
            [0.0, 0.0],
            DelayModel::per_task(0.02),
        );
    }
}
