//! Volunteer computing ("SETI@home"-style), the scenario that motivates
//! the paper's introduction: a mix of dedicated and non-dedicated nodes,
//! where the non-dedicated ones churn aggressively (owners reclaim their
//! desktops), balanced with the n-node LBP-2 machinery.
//!
//! ```text
//! cargo run --release --example volunteer_grid
//! ```

use churnbal::prelude::*;

fn main() {
    // Two dedicated servers plus four volunteer desktops. Volunteers are
    // individually fast but only ~50-67% available.
    let nodes = vec![
        NodeConfig::reliable(2.0, 300),                  // dedicated
        NodeConfig::reliable(1.5, 250),                  // dedicated
        NodeConfig::new(1.2, 1.0 / 15.0, 1.0 / 10.0, 0), // volunteer
        NodeConfig::new(1.2, 1.0 / 15.0, 1.0 / 10.0, 0),
        NodeConfig::new(1.0, 1.0 / 10.0, 1.0 / 10.0, 0),
        NodeConfig::new(1.0, 1.0 / 10.0, 1.0 / 10.0, 0),
    ];
    let config = SystemConfig::new(nodes, NetworkConfig::exponential(0.05));
    let total: u32 = 550;
    println!("volunteer grid: 2 dedicated + 4 volunteer nodes, {total} tasks on the servers");
    println!(
        "aggregate speed: {:.1} task/s nominal, {:.2} task/s availability-weighted\n",
        config.nodes.iter().map(|n| n.service_rate).sum::<f64>(),
        config
            .nodes
            .iter()
            .map(|n| n.service_rate * n.availability())
            .sum::<f64>()
    );

    let reps = 300;
    let mut rows: Vec<(String, f64, f64, f64)> = Vec::new();
    // Keep everything on the dedicated servers:
    let none = run_replications(
        &config,
        &|_| NoBalancing,
        reps,
        11,
        0,
        SimOptions::default(),
    );
    rows.push((
        "no balancing (servers only)".into(),
        none.mean(),
        none.ci95(),
        0.0,
    ));
    // Ship excess to volunteers once, ignore churn afterwards:
    let init = run_replications(
        &config,
        &|_| InitialBalanceOnly::new(1.0),
        reps,
        11,
        0,
        SimOptions::default(),
    );
    rows.push((
        "initial balancing only".into(),
        init.mean(),
        init.ci95(),
        0.0,
    ));
    // Full LBP-2: initial balancing + Eq. 8 compensation at every failure.
    let lbp2 = run_replications(
        &config,
        &|_| Lbp2::new(1.0),
        reps,
        11,
        0,
        SimOptions::default(),
    );
    rows.push((
        "LBP-2 (initial + Eq. 8)".into(),
        lbp2.mean(),
        lbp2.ci95(),
        lbp2.mean_tasks_shipped,
    ));

    println!(
        "{:<30} {:>12} {:>10} {:>16}",
        "policy", "mean (s)", "±95% CI", "tasks shipped"
    );
    for (name, mean, ci, shipped) in &rows {
        println!("{name:<30} {mean:>12.2} {ci:>10.2} {shipped:>16.1}");
    }

    let speedup = rows[0].1 / rows[2].1;
    println!("\nLBP-2 uses the volunteers despite churn: {speedup:.2}x faster than servers-only");
    assert!(rows[2].1 < rows[0].1, "balancing must beat hoarding");
    assert!(
        rows[2].1 <= rows[1].1 + 3.0,
        "failure compensation should not lose to initial-only"
    );
}
