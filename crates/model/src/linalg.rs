//! Dense Gaussian elimination for the small per-cell systems of Eq. (4).
//!
//! Every lattice cell couples at most `2^c` work-state unknowns (`c` =
//! number of churning nodes, so ≤ 4 unknowns for the two-node model). A
//! hand-rolled partial-pivoting solve keeps the hot loop allocation-free.

/// Solves `A x = b` in place: `a` is row-major `n × n` and is destroyed,
/// `b` is overwritten with the solution.
///
/// # Panics
/// Panics on dimension mismatch or a (numerically) singular matrix — the
/// per-cell matrices of Eq. (4) are strictly diagonally dominant, so
/// singularity indicates a bug in assembly, not in data.
pub fn solve_in_place(n: usize, a: &mut [f64], b: &mut [f64]) {
    assert_eq!(a.len(), n * n, "matrix must be n*n");
    assert_eq!(b.len(), n, "rhs must be length n");
    for col in 0..n {
        // Partial pivoting.
        let mut pivot_row = col;
        let mut pivot_mag = a[col * n + col].abs();
        for row in (col + 1)..n {
            let mag = a[row * n + col].abs();
            if mag > pivot_mag {
                pivot_mag = mag;
                pivot_row = row;
            }
        }
        assert!(pivot_mag > 1e-300, "singular system at column {col}");
        if pivot_row != col {
            for k in col..n {
                a.swap(pivot_row * n + k, col * n + k);
            }
            b.swap(pivot_row, col);
        }
        let pivot = a[col * n + col];
        for row in (col + 1)..n {
            let factor = a[row * n + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
            b[row] -= factor * b[col];
        }
    }
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row * n + k] * b[k];
        }
        b[row] = acc / a[row * n + row];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity() {
        let mut a = vec![1.0, 0.0, 0.0, 1.0];
        let mut b = vec![3.0, 4.0];
        solve_in_place(2, &mut a, &mut b);
        assert_eq!(b, vec![3.0, 4.0]);
    }

    #[test]
    fn known_2x2() {
        // [2 1; 1 3] x = [3; 5] -> x = [4/5, 7/5]
        let mut a = vec![2.0, 1.0, 1.0, 3.0];
        let mut b = vec![3.0, 5.0];
        solve_in_place(2, &mut a, &mut b);
        assert!((b[0] - 0.8).abs() < 1e-12);
        assert!((b[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn requires_pivoting() {
        // a11 = 0 forces a row swap.
        let mut a = vec![0.0, 1.0, 1.0, 0.0];
        let mut b = vec![2.0, 3.0];
        solve_in_place(2, &mut a, &mut b);
        assert!((b[0] - 3.0).abs() < 1e-12);
        assert!((b[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn four_by_four_random_roundtrip() {
        // Build Ax for a known x, solve, compare.
        let a_orig = [
            4.0, -1.0, 0.5, 0.0, //
            -1.0, 5.0, -0.25, 0.75, //
            0.0, -2.0, 6.0, -1.0, //
            0.5, 0.0, -1.5, 4.5,
        ];
        let x_true = [1.0, -2.0, 3.0, 0.5];
        let mut b = [0.0f64; 4];
        for i in 0..4 {
            for j in 0..4 {
                b[i] += a_orig[i * 4 + j] * x_true[j];
            }
        }
        let mut a = a_orig.to_vec();
        let mut bv = b.to_vec();
        solve_in_place(4, &mut a, &mut bv);
        for (got, want) in bv.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn singular_is_rejected() {
        let mut a = vec![1.0, 2.0, 2.0, 4.0];
        let mut b = vec![1.0, 2.0];
        solve_in_place(2, &mut a, &mut b);
    }

    #[test]
    #[should_panic(expected = "n*n")]
    fn dimension_mismatch_is_rejected() {
        let mut a = vec![1.0; 3];
        let mut b = vec![1.0; 2];
        solve_in_place(2, &mut a, &mut b);
    }
}
