//! # churnbal-ctmc
//!
//! A generic finite continuous-time Markov chain (CTMC) engine.
//!
//! The paper analyses its load-balancing policies with regeneration-theory
//! recursions (Eqs. 4–5). Those recursions are *equivalent* to absorption
//! analysis of a CTMC whose states are `(queue sizes, in-transit load, work
//! states)`. This crate implements that analysis independently —
//! state-space exploration, expected time to absorption, and transient
//! distributions via uniformization — so the recursion code in
//! `churnbal-model` can be cross-validated against a structurally different
//! implementation of the same mathematics.
//!
//! Pipeline:
//!
//! 1. [`explore::explore`] enumerates the reachable state space from a
//!    successor function and produces a [`Chain`] (CSR transition matrix).
//! 2. [`absorb::expected_absorption_times`] solves the linear system for
//!    `E[T_absorb | start = x]` (Gauss–Seidel on the M-matrix, with a dense
//!    direct fallback for small chains).
//! 3. [`uniformization::absorption_cdf`] computes `P(T_absorb ≤ t)` on a
//!    time grid by uniformization with adaptive sub-stepping.

pub mod absorb;
pub mod chain;
pub mod explore;
pub mod moments;
pub mod stationary;
pub mod uniformization;

pub use absorb::expected_absorption_times;
pub use chain::{Chain, StateIndex, ABSORBING};
pub use explore::{explore, Explored};
pub use moments::{absorption_moments, AbsorptionMoments};
pub use stationary::stationary_distribution;
pub use uniformization::{absorption_cdf, transient_distribution};
