//! Dynamic workloads — the extension sketched in the paper's conclusion:
//! "execute load-balancing episodes at every external arrival of new
//! workloads."
//!
//! ```text
//! cargo run --release --example dynamic_arrivals
//! ```
//!
//! A bursty stream of task batches lands on whichever node the client
//! happens to contact; episodic LBP-2 re-balances at each arrival and is
//! compared against balancing only once at t = 0.

use churnbal::prelude::*;
use churnbal::stochastic::Xoshiro256pp;

fn main() {
    // Build a reproducible bursty arrival pattern: 8 batches, alternating
    // targets, sizes 40-120, roughly every 15 s.
    let mut rng = Xoshiro256pp::seed_from_u64(404);
    let mut arrivals = Vec::new();
    let mut t = 0.0;
    for i in 0..8 {
        t += 5.0 + rng.exp(1.0 / 10.0);
        arrivals.push(ExternalArrival {
            time: t,
            node: i % 2,
            tasks: 40 + (rng.next_below(81) as u32),
        });
    }
    let total_external: u32 = arrivals.iter().map(|a| a.tasks).sum();
    let config = SystemConfig::paper([30, 30]).with_external_arrivals(arrivals.clone());

    println!(
        "dynamic arrivals: 60 initial tasks + {total_external} tasks in 8 bursts over ~{t:.0} s"
    );
    for a in &arrivals {
        println!(
            "  t = {:>6.1} s: {:>3} tasks -> node {}",
            a.time,
            a.tasks,
            a.node + 1
        );
    }

    let reps = 300;
    let episodic = run_replications(
        &config,
        &|_| EpisodicLbp2::new(1.0),
        reps,
        17,
        0,
        SimOptions::default(),
    );
    let start_only = run_replications(
        &config,
        &|_| Lbp2::new(1.0),
        reps,
        17,
        0,
        SimOptions::default(),
    );
    let nothing = run_replications(
        &config,
        &|_| NoBalancing,
        reps,
        17,
        0,
        SimOptions::default(),
    );

    println!("\n{:<28} {:>12} {:>10}", "policy", "mean (s)", "±95% CI");
    println!(
        "{:<28} {:>12.2} {:>10.2}",
        "no balancing",
        nothing.mean(),
        nothing.ci95()
    );
    println!(
        "{:<28} {:>12.2} {:>10.2}",
        "LBP-2 (t = 0 episode only)",
        start_only.mean(),
        start_only.ci95()
    );
    println!(
        "{:<28} {:>12.2} {:>10.2}",
        "LBP-2 (episodic)",
        episodic.mean(),
        episodic.ci95()
    );

    assert!(episodic.mean() < nothing.mean());
    println!(
        "\nepisodic re-balancing recovers the LBP-2 benefit under dynamic workloads\n\
         ({:.1}% faster than a single t = 0 episode)",
        (start_only.mean() / episodic.mean() - 1.0) * 100.0
    );
}
