//! Regression gate: pinned completion-time digests for named scenarios.
//!
//! The engine's determinism contract says a scenario's Monte-Carlo output
//! is a pure function of `(scenario, reps, seed)` — these tests pin that
//! function's value for three presets spanning the engine's regimes
//! (two-node paper baseline, cascading failures, a heterogeneous
//! volunteer grid). Any refactor that drifts a sampled trajectory — a
//! reordered RNG draw, a changed event pop order, a float reassociation —
//! fails here deliberately instead of silently invalidating every pinned
//! experiment. If a drift is *intended*, re-pin the digests in the same PR
//! and say why.

// The deprecated `run_scenario`/`run_sweep` wrappers are exercised here on
// purpose: their bytes must stay identical to the pre-Experiment output
// (the API-redesign acceptance gate), so the digests pin them directly.
use churnbal::cluster::QueueBackend;
use churnbal::lab::{
    registry, Axis, AxisParam, Experiment, ExperimentSpec, PolicyEntry, RunOptions,
};
#[allow(deprecated)]
use churnbal::lab::{run_scenario, run_sweep};
use churnbal::prelude::PolicySpec;
use churnbal::stochastic::{digest_f64s, fnv1a_bytes};

/// Small but non-trivial replication count: enough to cover churn,
/// transfers and multi-node paths, cheap enough for every `cargo test`.
const REPS: u64 = 24;

#[allow(deprecated)]
fn scenario_digest(name: &str) -> u64 {
    let scenario = registry::get(name).unwrap_or_else(|| panic!("preset {name} missing"));
    let est = run_scenario(
        &scenario,
        RunOptions {
            reps: Some(REPS),
            threads: 3,
            ..RunOptions::default()
        },
    )
    .unwrap_or_else(|e| panic!("{name}: {e}"));
    digest_f64s(&est.completion_times)
}

#[test]
fn paper_fig3_sample_paths_are_pinned() {
    assert_eq!(
        scenario_digest("paper-fig3"),
        0x0f2c_1e54_e4b4_11e8,
        "paper-fig3 trajectories drifted"
    );
}

#[test]
fn cascading_failures_sample_paths_are_pinned() {
    assert_eq!(
        scenario_digest("cascading-failures"),
        0x91fd_73a9_e9db_6dff,
        "cascading-failures trajectories drifted"
    );
}

#[test]
fn volunteer_grid_sample_paths_are_pinned() {
    assert_eq!(
        scenario_digest("volunteer-grid"),
        0xf267_bfbb_f4ef_2654,
        "volunteer-grid trajectories drifted"
    );
}

/// Digest of the **full sweep CSV bytes** of a preset — header, axis
/// columns, every statistics column of every row. Stricter than the
/// completion-time digests above: it additionally pins the grid
/// expansion, the row ordering of the sweep scheduler's reorder buffer,
/// the derived statistics arithmetic and the exact rendering.
#[allow(deprecated)]
fn sweep_csv_digest(name: &str, extra: &[Axis], threads: usize) -> u64 {
    let scenario = registry::get(name).unwrap_or_else(|| panic!("preset {name} missing"));
    let result = run_sweep(
        &scenario,
        extra,
        RunOptions {
            reps: Some(6),
            threads,
            ..RunOptions::default()
        },
    )
    .unwrap_or_else(|e| panic!("{name}: {e}"));
    fnv1a_bytes(result.to_csv().as_bytes())
}

#[test]
fn paper_fig3_sweep_csv_bytes_are_pinned() {
    // The preset's baked-in 21-value gain axis: one full Fig. 3 sweep.
    assert_eq!(
        sweep_csv_digest("paper-fig3", &[], 3),
        0xd850_21ea_fc0e_8e22,
        "paper-fig3 sweep CSV bytes drifted"
    );
}

#[test]
fn mmpp_bursty_sweep_csv_bytes_are_pinned() {
    // A 2x2 grid over gain x failure-scale on the MMPP arrival preset —
    // covers the stochastic-arrival path and multi-axis expansion.
    let axes = vec![
        Axis {
            param: AxisParam::Gain,
            values: vec![0.25, 0.75],
        },
        Axis {
            param: AxisParam::FailureScale,
            values: vec![0.5, 1.5],
        },
    ];
    assert_eq!(
        sweep_csv_digest("mmpp-bursty", &axes, 3),
        0x317d_3565_86d5_582d,
        "mmpp-bursty sweep CSV bytes drifted"
    );
}

/// Digest of the **full compare CSV bytes** of the flagship comparison:
/// `paper-fig3 × {lbp1, lbp2, none}` through one scheduler pass with
/// common random numbers. Pins the per-policy statistics, the CRN-paired
/// delta columns (mean / sd / t-based CI) and the Eq. 4 theory columns of
/// every row — the `compare` regression gate the CI perf-smoke step also
/// asserts via `perfreport`'s compare-grid workload.
fn compare_csv_digest(threads: usize) -> u64 {
    let scenario = registry::get("paper-fig3").expect("preset");
    let policies = ["lbp1", "lbp2", "none"]
        .iter()
        .map(|name| {
            PolicyEntry::named(
                (*name).to_string(),
                PolicySpec::parse(name, &scenario.policy).expect("known policy"),
            )
        })
        .collect();
    let result = Experiment::new(ExperimentSpec::compare(
        scenario,
        Vec::new(),
        policies,
        RunOptions {
            reps: Some(6),
            threads,
            ..RunOptions::default()
        },
    ))
    .collect()
    .expect("compare runs");
    fnv1a_bytes(result.to_csv().as_bytes())
}

#[test]
fn paper_fig3_compare_csv_bytes_are_pinned() {
    assert_eq!(
        compare_csv_digest(3),
        PINNED_COMPARE_FIG3_DIGEST,
        "paper-fig3 compare CSV bytes drifted"
    );
}

/// The pinned digest of `compare_csv_digest`, shared with the test that
/// proves thread invariance below.
const PINNED_COMPARE_FIG3_DIGEST: u64 = 0xcceb_2a86_ba60_bcd8;

/// The compare digest must not depend on scheduling either.
#[test]
fn compare_csv_digest_is_thread_invariant() {
    assert_eq!(compare_csv_digest(1), compare_csv_digest(8));
}

/// The sweep-CSV digests must not depend on scheduling either.
#[test]
fn sweep_csv_digests_are_thread_invariant() {
    assert_eq!(
        sweep_csv_digest("paper-fig3", &[], 1),
        sweep_csv_digest("paper-fig3", &[], 8)
    );
}

/// The event-queue backends must be bit-interchangeable: the calendar
/// queue and the indexed heap pop in identical `(time, seq)` order, so a
/// topology preset driven through either backend — or through `Auto` —
/// samples the same trajectories. Pinned, so neither backend can drift
/// away from the other (or from history) unnoticed.
#[test]
fn torus_digests_are_backend_invariant_and_pinned() {
    let scenario = registry::get("torus").expect("preset torus missing");
    let run = |backend: QueueBackend| {
        Experiment::new(ExperimentSpec::sweep(
            scenario.clone(),
            Vec::new(),
            RunOptions {
                reps: Some(12),
                threads: 3,
                backend,
                ..RunOptions::default()
            },
        ))
        .estimate()
        .expect("torus runs")
        .completion_times
    };
    let heap = run(QueueBackend::Heap);
    let calendar = run(QueueBackend::Calendar);
    let auto = run(QueueBackend::Auto);
    assert_eq!(heap, calendar, "heap and calendar backends diverged");
    assert_eq!(heap, auto, "auto backend diverged from its resolution");
    assert_eq!(
        digest_f64s(&heap),
        PINNED_TORUS_BACKEND_DIGEST,
        "torus trajectories drifted (digest {:#018x})",
        digest_f64s(&heap)
    );
}

/// The pinned digest of `torus_digests_are_backend_invariant_and_pinned`.
const PINNED_TORUS_BACKEND_DIGEST: u64 = 0xdae3_e3d1_7201_8320;

/// Digest of the **probe JSONL bytes** of a probed run: every telemetry
/// tick of every `(grid point, policy, replication)` of the
/// cascading-failures preset at a 20 s cadence, rendered through the same
/// [`probe_jsonl_row`] the CLI's `--probe-out` uses. Pins the probe
/// subsystem end to end — tick placement, fleet aggregates, histogram
/// quantiles, rendering — and, run at two thread counts below, proves the
/// telemetry stream itself is scheduling-invariant.
fn probe_jsonl_digest(threads: usize) -> u64 {
    use churnbal::cluster::ProbeReport;
    use churnbal::lab::{probe_jsonl_row, ExperimentRow, ExperimentSchema, RowSink};

    #[derive(Default)]
    struct ProbeLines {
        scenario: String,
        buf: String,
    }
    impl RowSink for ProbeLines {
        fn begin(&mut self, schema: &ExperimentSchema) -> Result<(), String> {
            self.scenario.clone_from(&schema.scenario);
            Ok(())
        }
        fn row(&mut self, _row: &ExperimentRow) -> Result<(), String> {
            Ok(())
        }
        fn probes(&mut self, row: &ExperimentRow, reports: &[ProbeReport]) -> Result<(), String> {
            for (rep, report) in reports.iter().enumerate() {
                for sample in &report.samples {
                    self.buf.push_str(&probe_jsonl_row(
                        &self.scenario,
                        row.index,
                        &row.policy,
                        rep,
                        sample,
                    ));
                }
            }
            Ok(())
        }
    }

    let scenario = registry::get("cascading-failures").expect("preset");
    let mut sink = ProbeLines::default();
    Experiment::new(ExperimentSpec::sweep(
        scenario,
        Vec::new(),
        RunOptions {
            reps: Some(8),
            threads,
            probe_dt: Some(20.0),
            ..RunOptions::default()
        },
    ))
    .run(&mut sink)
    .expect("probed run works");
    assert!(!sink.buf.is_empty(), "probing armed but no ticks emitted");
    fnv1a_bytes(sink.buf.as_bytes())
}

#[test]
fn probe_jsonl_bytes_are_pinned_and_thread_invariant() {
    let single = probe_jsonl_digest(1);
    assert_eq!(
        single, PINNED_PROBE_JSONL_DIGEST,
        "probe telemetry bytes drifted (digest {single:#018x})"
    );
    assert_eq!(
        probe_jsonl_digest(4),
        single,
        "probe telemetry depends on the thread count"
    );
}

/// The pinned digest of `probe_jsonl_digest`.
const PINNED_PROBE_JSONL_DIGEST: u64 = 0x4c4e_4e48_2a11_549a;

/// The lossy-channel regression gate: the `lossy-fabric` preset (per-edge
/// loss scaling over a torus, enqueue-on-down, retry/backoff redelivery)
/// pinned the same way the reliable presets are. Channel randomness rides
/// replication-scoped streams like every other noise source, so the lossy
/// trajectory is a pure function of `(scenario, reps, seed)` too — and the
/// thread-invariance assertion below pins that the retry machinery leaks
/// no scheduling dependence into the sampled paths.
#[test]
#[allow(deprecated)]
fn lossy_fabric_sample_paths_are_pinned_and_thread_invariant() {
    let digest = scenario_digest("lossy-fabric");
    assert_eq!(
        digest, PINNED_LOSSY_FABRIC_DIGEST,
        "lossy-fabric trajectories drifted (digest {digest:#018x})"
    );
    let scenario = registry::get("lossy-fabric").expect("preset");
    let run = |threads: usize| {
        run_scenario(
            &scenario,
            RunOptions {
                reps: Some(REPS),
                threads,
                ..RunOptions::default()
            },
        )
        .expect("runs")
        .completion_times
    };
    assert_eq!(
        digest_f64s(&run(1)),
        digest_f64s(&run(7)),
        "lossy-fabric trajectories depend on the thread count"
    );
}

/// The pinned digest of `lossy_fabric_sample_paths_are_pinned_and_thread_invariant`.
const PINNED_LOSSY_FABRIC_DIGEST: u64 = 0x1f95_93b6_f075_8478;

/// The digests above must not depend on the worker-thread count — pin the
/// invariance itself so the gate cannot be weakened by a scheduling leak.
#[test]
#[allow(deprecated)]
fn pinned_digests_are_thread_invariant() {
    let scenario = registry::get("cascading-failures").expect("preset");
    let run = |threads: usize| {
        run_scenario(
            &scenario,
            RunOptions {
                reps: Some(REPS),
                threads,
                ..RunOptions::default()
            },
        )
        .expect("runs")
        .completion_times
    };
    assert_eq!(digest_f64s(&run(1)), digest_f64s(&run(7)));
}
