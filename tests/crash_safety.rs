//! Integration: crash safety end to end. A campaign interrupted mid-grid
//! resumes from its write-ahead journal to byte-identical output — across
//! thread counts — and a panicking replication is quarantined without
//! taking down, or perturbing, any other cell.

use std::fs;
use std::path::PathBuf;

use churnbal::lab::cli;

fn call(args: &[&str]) -> Result<String, String> {
    cli::run(&args.iter().map(|s| (*s).to_string()).collect::<Vec<_>>())
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

/// The single journal file a run left in `dir`.
fn journal_file(dir: &PathBuf) -> PathBuf {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .expect("journal dir readable")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.to_string_lossy().ends_with(".journal.jsonl"))
        .collect();
    assert_eq!(files.len(), 1, "expected exactly one journal in {dir:?}");
    files.pop().expect("one file")
}

/// A 5-point x 2-policy compare grid: big enough that a truncated journal
/// leaves genuinely unfinished cells, small enough to run in seconds.
fn grid_args<'a>(journal: Option<&'a str>, resume: bool, threads: &'a str) -> Vec<&'a str> {
    let mut args = vec![
        "compare",
        "paper-delay-crossover",
        "--policies",
        "lbp1,none",
        "--reps",
        "3",
        "--format",
        "csv",
        "--threads",
        threads,
    ];
    if let Some(dir) = journal {
        args.extend(["--journal", dir]);
        if resume {
            args.push("--resume");
        }
    }
    args
}

#[test]
fn kill_and_resume_reproduces_identical_bytes_across_threads() {
    let dir = fresh_dir("churnbal_crash_safety_resume");
    let dir_str = dir.to_str().expect("utf8");

    // The ground truth: the same grid with no journal involved at all.
    let reference = call(&grid_args(None, false, "1")).expect("clean run");

    // Journaling must not change the output bytes.
    let journaled = call(&grid_args(Some(dir_str), false, "1")).expect("journaled run");
    assert_eq!(journaled, reference, "journaling changed the output bytes");

    // Simulate a crash mid-grid: keep the header and the first 4 of the
    // 10 cell records, plus a torn half-record the crash left behind.
    let path = journal_file(&dir);
    let full = fs::read_to_string(&path).expect("journal readable");
    assert_eq!(full.lines().count(), 11, "header + 10 cells:\n{full}");
    let keep: Vec<&str> = full.lines().take(5).collect();
    let truncated = format!("{}\n{{\"point\":2,\"pol", keep.join("\n"));
    fs::write(&path, truncated).expect("truncate journal");

    // Resume on a different thread count than the original run: replayed
    // cells come from the journal, the rest recompute, and CRN plus
    // stable replication slots make the bytes identical anyway.
    for threads in ["4", "1"] {
        let resumed = call(&grid_args(Some(dir_str), true, threads)).expect("resumed run");
        assert_eq!(
            resumed, reference,
            "resume with --threads {threads} changed the output bytes"
        );
    }

    // The second resume above replayed a journal the first resume had
    // healed and completed: it must again hold all 10 cells.
    let healed = fs::read_to_string(&path).expect("journal readable");
    assert_eq!(healed.lines().count(), 11, "self-healed journal:\n{healed}");
}

#[test]
fn journal_from_a_different_spec_is_rejected() {
    let dir = fresh_dir("churnbal_crash_safety_mismatch");
    let dir_str = dir.to_str().expect("utf8");
    call(&grid_args(Some(dir_str), false, "1")).expect("journaled run");

    // Corrupt the header's spec digest, as if the file were copied over
    // from another campaign. Resume must refuse rather than mix results.
    let path = journal_file(&dir);
    let full = fs::read_to_string(&path).expect("journal readable");
    let (header, rest) = full.split_once('\n').expect("header line");
    let forged = format!(
        "{}\n{rest}",
        header.replace(
            header.split("\"spec\":\"").nth(1).expect("spec field")[..16]
                .to_string()
                .as_str(),
            "0123456789abcdef",
        )
    );
    assert_ne!(forged, full, "forgery must actually change the digest");
    fs::write(&path, forged).expect("forge journal");

    let err = call(&grid_args(Some(dir_str), true, "1")).unwrap_err();
    assert!(err.contains("spec changed"), "{err}");
}

#[test]
fn panic_injection_quarantines_one_cell_and_leaves_the_rest_bit_exact() {
    // A clean two-policy run, then the same grid with a chaos policy
    // wedged in between that panics on replication 1 of every point.
    let clean = call(&[
        "compare",
        "paper-delay-crossover",
        "--policies",
        "lbp1,none",
        "--reps",
        "3",
        "--format",
        "csv",
        "--threads",
        "2",
    ])
    .expect("clean compare");
    let chaotic = call(&[
        "compare",
        "paper-delay-crossover",
        "--policies",
        "lbp1,chaos-panic@1,none",
        "--reps",
        "3",
        "--format",
        "csv",
        "--threads",
        "2",
    ])
    .expect("a panicking policy must not kill the campaign");

    // Every non-chaos row survives byte-for-byte: same CRN streams, same
    // baseline, same deltas. Only the policy roster differs.
    let rows = |text: &str, label: &str| -> Vec<String> {
        text.lines()
            .filter(|l| l.contains(&format!(",{label},")))
            .map(str::to_string)
            .collect()
    };
    for label in ["lbp1", "none"] {
        assert_eq!(
            rows(&clean, label),
            rows(&chaotic, label),
            "quarantine perturbed the {label} rows"
        );
    }
    // The chaos policy still emits a row per grid point, aggregated over
    // its two surviving replications.
    assert_eq!(rows(&chaotic, "chaos-panic@1").len(), 5, "{chaotic}");
}
