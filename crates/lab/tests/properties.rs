//! Property tests for the TOML subset and the scenario mapping:
//! `parse ∘ serialize = id` at both the document and the scenario level.

use churnbal_cluster::{
    ArrivalKind, ArrivalProcess, ChannelModel, ChurnModel, DelayLaw, DownPolicy, ExternalArrival,
};
use churnbal_core::PolicySpec;
use churnbal_lab::scenario::{ArrivalsSpec, NetworkSpec, NodeSpec, Scenario, TopologySpec};
use churnbal_lab::sweep::{Axis, AxisParam};
use churnbal_lab::toml::{Doc, Table, Value};
use proptest::prelude::*;

// ---- document-level strategies ----------------------------------------

fn scalar() -> BoxedStrategy<Value> {
    prop_oneof![
        prop_oneof![
            Just("plain".to_string()),
            Just(String::new()),
            Just("with \"quotes\" and \\ backslash".to_string()),
            Just("hash # inside".to_string()),
            Just("newline\nand\ttab".to_string()),
            Just("unicode: λ_f → ∞".to_string()),
        ]
        .prop_map(Value::Str),
        (-1_000_000i64..1_000_000).prop_map(Value::Int),
        prop_oneof![
            (-1.0e6..1.0e6f64).prop_map(Value::Float),
            Just(Value::Float(0.05)),
            Just(Value::Float(-0.0)),
            Just(Value::Float(5e-324)),
            Just(Value::Float(1.797_693_134_862_315_7e308)),
            Just(Value::Float(1.0 / 3.0)),
        ],
        prop::bool::ANY.prop_map(Value::Bool),
    ]
    .boxed()
}

fn value() -> BoxedStrategy<Value> {
    prop_oneof![
        scalar(),
        prop::collection::vec(scalar(), 0..4).prop_map(Value::Array),
    ]
    .boxed()
}

fn key() -> BoxedStrategy<String> {
    prop_oneof![
        Just("alpha".to_string()),
        Just("beta-2".to_string()),
        Just("under_score".to_string()),
        Just("x".to_string()),
        Just("UPPER".to_string()),
        Just("k9".to_string()),
    ]
    .boxed()
}

fn table() -> BoxedStrategy<Table> {
    prop::collection::vec((key(), value()), 0..5)
        .prop_map(|pairs| {
            let mut t = Table::new();
            for (k, v) in pairs {
                t.set(k, v); // duplicate keys collapse, keeping the table legal
            }
            t
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn doc_round_trip_is_identity(
        root in table(),
        named in prop::collection::vec(table(), 0..3),
        grouped in prop::collection::vec(table(), 0..4),
    ) {
        let mut doc = Doc { root, ..Doc::default() };
        let table_names = ["first", "second", "third"];
        for (i, t) in named.into_iter().enumerate() {
            doc.set_table(table_names[i], t);
        }
        for t in grouped {
            doc.push_array("group", t);
        }
        let text = doc.serialize();
        let back = Doc::parse(&text);
        prop_assert!(back.is_ok(), "reparse failed: {:?}\n{text}", back.err());
        prop_assert_eq!(doc, back.unwrap(), "round trip changed the doc:\n{}", text);
    }

    #[test]
    fn scalar_values_survive_the_text_form_bit_exactly(v in scalar()) {
        let mut doc = Doc::default();
        doc.root.set("v", v);
        let text = doc.serialize();
        let back = Doc::parse(&text).expect("reparse");
        // PartialEq on f64 treats -0.0 == 0.0; compare bits for floats.
        match (doc.root.get("v"), back.root.get("v")) {
            (Some(Value::Float(a)), Some(Value::Float(b))) => {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "float changed: {} -> {}", a, b);
            }
            (a, b) => prop_assert_eq!(a, b),
        }
    }
}

// ---- scenario-level strategies ----------------------------------------

fn node_spec() -> BoxedStrategy<NodeSpec> {
    (0.1..5.0f64, 0.0..0.2f64, 0.01..0.5f64, 0u32..200, 1u32..4)
        .prop_map(|(s, f, r, m, c)| NodeSpec {
            service_rate: s,
            failure_rate: f,
            recovery_rate: r,
            initial_tasks: m,
            count: c,
        })
        .boxed()
}

fn policy_spec() -> BoxedStrategy<PolicySpec> {
    prop_oneof![
        Just(PolicySpec::NoBalancing),
        (0usize..2, 0.0..1.0f64).prop_map(|(s, g)| PolicySpec::Lbp1 {
            sender: s,
            receiver: 1 - s,
            gain: g,
        }),
        Just(PolicySpec::Lbp1Optimal),
        (0.0..1.0f64).prop_map(|g| PolicySpec::Lbp2 { gain: g }),
        Just(PolicySpec::Lbp2Optimal),
        (0.0..1.0f64).prop_map(|g| PolicySpec::EpisodicLbp2 { gain: g }),
        Just(PolicySpec::DynamicLbp1),
        (0.0..1.0f64).prop_map(|g| PolicySpec::InitialBalanceOnly { gain: g }),
        Just(PolicySpec::UponFailureOnly),
    ]
    .boxed()
}

fn arrivals_spec() -> BoxedStrategy<ArrivalsSpec> {
    prop_oneof![
        Just(ArrivalsSpec::None),
        prop::collection::vec((0.0..100.0f64, 0usize..2, 1u32..50), 1..4).prop_map(|list| {
            ArrivalsSpec::Fixed(
                list.into_iter()
                    .map(|(time, node, tasks)| ExternalArrival { time, node, tasks })
                    .collect(),
            )
        }),
        (0.01..3.0f64, 1.0..200.0f64, 1u32..4, 0u32..8).prop_map(|(rate, horizon, lo, extra)| {
            ArrivalsSpec::Process(ArrivalProcess {
                kind: ArrivalKind::Poisson { rate },
                batch_min: lo,
                batch_max: lo + extra,
                horizon,
            })
        }),
        (0.0..1.0f64, 0.5..5.0f64, 0.01..1.0f64, 1.0..100.0f64).prop_map(
            |(quiet, burst, switch, horizon)| {
                ArrivalsSpec::Process(ArrivalProcess {
                    kind: ArrivalKind::Mmpp {
                        rates: vec![quiet, burst],
                        switch_rates: vec![switch, switch * 2.0],
                    },
                    batch_min: 1,
                    batch_max: 6,
                    horizon,
                })
            }
        ),
        (0.1..2.0f64, 0.0..1.0f64, 5.0..100.0f64).prop_map(|(base, amp, period)| {
            ArrivalsSpec::Process(ArrivalProcess {
                kind: ArrivalKind::Diurnal {
                    base_rate: base,
                    amplitude: amp,
                    period,
                },
                batch_min: 1,
                batch_max: 3,
                horizon: 80.0,
            })
        }),
        (0.1..1.0f64, 0.0..40.0f64, 1.0..20.0f64, 1.0..10.0f64).prop_map(
            |(base, start, dur, factor)| {
                ArrivalsSpec::Process(ArrivalProcess {
                    kind: ArrivalKind::FlashCrowd {
                        base_rate: base,
                        spike_start: start,
                        spike_duration: dur,
                        spike_factor: factor,
                    },
                    batch_min: 1,
                    batch_max: 4,
                    horizon: 60.0,
                })
            }
        ),
    ]
    .boxed()
}

fn churn_model() -> BoxedStrategy<ChurnModel> {
    prop_oneof![
        Just(ChurnModel::Independent),
        (0.01..0.5f64, 0.05..1.0f64).prop_map(|(rate, p)| ChurnModel::CorrelatedShocks {
            shock_rate: rate,
            hit_probability: p,
        }),
        (0.0..5.0f64).prop_map(|a| ChurnModel::Cascading { amplification: a }),
        (
            0.01..0.5f64,
            1u32..8,
            prop::collection::vec(0.0..1.0f64, 1..5),
        )
            .prop_map(|(rate, group, probs)| ChurnModel::RackShocks {
                shock_rate: rate,
                group_size: group,
                hit_probabilities: probs,
            }),
    ]
    .boxed()
}

fn topology_spec() -> BoxedStrategy<Option<TopologySpec>> {
    prop_oneof![
        Just(None),
        Just(Some(TopologySpec::Complete)),
        Just(Some(TopologySpec::Ring)),
        (1u32..6, 1u32..6).prop_map(|(rows, cols)| Some(TopologySpec::Torus { rows, cols })),
        (
            2u32..6,
            prop_oneof![
                0u64..1_000_000_000,
                Just(u64::MAX),
                Just(i64::MAX as u64 + 1)
            ],
        )
            .prop_map(|(degree, seed)| Some(TopologySpec::RandomRegular { degree, seed })),
        (1u32..5, 1u32..4, 1u32..4, 1.0..10.0f64, 1.0..20.0f64).prop_map(
            |(rack_size, racks_per_row, rows, row_scale, dc_scale)| {
                Some(TopologySpec::Hierarchical {
                    rack_size,
                    racks_per_row,
                    rows,
                    row_scale,
                    dc_scale,
                })
            }
        ),
    ]
    .boxed()
}

fn axis() -> BoxedStrategy<Axis> {
    (
        prop_oneof![
            Just(AxisParam::Gain),
            Just(AxisParam::FailureScale),
            Just(AxisParam::RecoveryScale),
            Just(AxisParam::ArrivalScale),
            Just(AxisParam::DelayPerTask),
            Just(AxisParam::NodeCount),
        ],
        prop::collection::vec(0.0..3.0f64, 1..5),
    )
        .prop_map(|(param, values)| Axis { param, values })
        .boxed()
}

fn channel_model() -> BoxedStrategy<ChannelModel> {
    prop_oneof![
        Just(ChannelModel::Reliable),
        (
            0.0..0.99f64,
            prop_oneof![
                Just(DownPolicy::Enqueue),
                Just(DownPolicy::Drop),
                Just(DownPolicy::Bounce),
            ],
            0u32..6,
            0.01..2.0f64,
        )
            .prop_map(|(loss_probability, on_down, max_retries, retry_backoff)| {
                ChannelModel::Lossy {
                    loss_probability,
                    on_down,
                    max_retries,
                    retry_backoff,
                }
            },),
    ]
    .boxed()
}

fn scenario() -> BoxedStrategy<Scenario> {
    let head = (
        prop_oneof![
            Just("prop-a".to_string()),
            Just("prop-b".to_string()),
            Just("weird λ name".to_string()),
        ],
        prop_oneof![Just(String::new()), Just("a description".to_string())],
        1u64..2000,
        // Seeds cover the full u64 range: values above i64::MAX travel
        // through the TOML integer in two's complement.
        prop_oneof![
            0u64..1_000_000_000,
            Just(u64::MAX),
            Just(0x9000_0000_0000_0000u64),
            Just(i64::MAX as u64 + 1),
        ],
        prop_oneof![Just(None), (1.0..500.0f64).prop_map(Some)],
        prop_oneof![Just(None), (0.05..10.0f64).prop_map(Some)],
        prop_oneof![
            Just((None, None)),
            Just((Some("journals".to_string()), None)),
            Just((Some("journals".to_string()), Some(1u64))),
            Just((Some("out/run λ".to_string()), Some(128u64))),
        ],
    );
    let body = (
        prop::collection::vec(node_spec(), 1..4),
        (0.0..0.5f64, 0.001..0.5f64).prop_map(|(fixed, per_task)| (fixed, per_task)),
        prop_oneof![
            Just(DelayLaw::ExponentialBatch),
            Just(DelayLaw::ErlangPerTask),
            Just(DelayLaw::DeterministicBatch),
        ],
        arrivals_spec(),
        (churn_model(), channel_model()),
        topology_spec(),
        policy_spec(),
        prop::collection::vec(axis(), 0..3),
    );
    (head, body)
        .prop_map(
            |(
                (name, description, reps, seed, deadline, probe_dt, (journal_dir, journal_fsync)),
                (nodes, (fixed, per_task), law, arrivals, (churn, channel), topology, policy, axes),
            )| Scenario {
                name,
                description,
                reps,
                seed,
                deadline,
                probe_dt,
                journal_dir,
                journal_fsync_every: journal_fsync,
                nodes,
                network: NetworkSpec {
                    fixed,
                    per_task,
                    law,
                },
                arrivals,
                churn,
                channel,
                topology,
                policy,
                axes,
            },
        )
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The headline satellite property: any scenario — valid or not as an
    /// experiment — maps to text and back without loss.
    #[test]
    fn scenario_round_trip_is_identity(sc in scenario()) {
        let text = sc.to_toml();
        let back = Scenario::from_toml(&text);
        prop_assert!(back.is_ok(), "reparse failed: {:?}\n{text}", back.err());
        prop_assert_eq!(sc, back.unwrap(), "round trip changed the scenario:\n{}", text);
    }

    /// Valid scenarios keep building the same config after a text trip.
    #[test]
    fn config_is_stable_under_round_trip(sc in scenario()) {
        // Randomly assembled specs may fail validation: fine, the
        // round-trip identity above still covers them.
        prop_assume!(sc.system_config().is_ok());
        let config = sc.system_config().expect("just checked");
        let back = Scenario::from_toml(&sc.to_toml()).expect("round trip");
        let config2 = back.system_config().expect("still valid");
        prop_assert_eq!(config, config2);
    }
}
