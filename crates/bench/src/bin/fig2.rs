//! Figure 2: (top) empirical pdf of the per-task transfer delay with its
//! (shifted-)exponential fit; (bottom) mean batch-transfer delay as a
//! function of the number of tasks, with the linear fit.
//!
//! The paper estimates these from 30 realisations per point over the WLAN;
//! we print the 30-realisation estimate (like-for-like) next to a
//! high-sample fit.

use churnbal_bench::table::{f2, TextTable};
use churnbal_bench::Args;
use churnbal_cluster::testbed::{sample_batch_delays, sample_per_task_delays, TESTBED_DELAY_SHIFT};
use churnbal_stochastic::{fit, regression, Histogram, OnlineStats, Xoshiro256pp};

fn main() {
    let args = Args::parse();
    let mut rng = Xoshiro256pp::seed_from_u64(args.seed);

    // --- Top panel: per-task delay pdf ---
    let n_fit = args.reps_or(20_000) as usize;
    let xs = sample_per_task_delays(n_fit, &mut rng);
    let sf = fit::shifted_exp_fit(&xs);
    let plain_rate = fit::exp_rate_mle(&xs);
    println!("Figure 2 (top) — per-task transfer delay pdf ({n_fit} samples)");
    println!(
        "shifted-exponential fit: shift = {:.4} s (configured {TESTBED_DELAY_SHIFT}), tail mean = {:.4} s",
        sf.shift,
        1.0 / sf.rate
    );
    println!(
        "plain exponential fit (the paper's approximation): mean = {:.4} s (paper: 0.02 s)\n",
        1.0 / plain_rate
    );
    let mut h = Histogram::new(0.0, 0.1, 25);
    h.add_all(&xs);
    let mut t = TextTable::new(["z (s)", "empirical pdf", "shifted-exp fit"]);
    for (x, d) in h.density_series() {
        let fitted = if x < sf.shift {
            0.0
        } else {
            sf.rate * (-(sf.rate) * (x - sf.shift)).exp()
        };
        t.row([format!("{x:.4}"), f2(d), f2(fitted)]);
    }
    t.print();

    // --- Bottom panel: mean delay vs batch size ---
    let reps = 30; // the paper used 30 realisations; cheap enough to keep under --quick
    println!(
        "\nFigure 2 (bottom) — mean transfer delay vs number of tasks ({reps} realisations/point)"
    );
    let ls: Vec<u32> = (1..=10).map(|i| i * 10).collect();
    let mut means = Vec::new();
    let mut t = TextTable::new(["# tasks L", "mean delay (s)", "ci95", "model mean"]);
    for &l in &ls {
        let mut s = OnlineStats::new();
        for d in sample_batch_delays(l, reps, &mut rng) {
            s.push(d);
        }
        means.push(s.mean());
        t.row([
            l.to_string(),
            f2(s.mean()),
            f2(s.ci95_half_width()),
            f2(TESTBED_DELAY_SHIFT + 0.02 * f64::from(l)),
        ]);
    }
    t.print();
    let xsf: Vec<f64> = ls.iter().map(|&l| f64::from(l)).collect();
    let line = regression::fit_line(&xsf, &means);
    println!(
        "\nlinear fit: mean ≈ {:.4} + {:.4}·L  (paper: slope ≈ 0.02 s/task), R² = {:.4}",
        line.intercept, line.slope, line.r_squared
    );
    assert!(
        (line.slope - 0.02).abs() < 0.004,
        "slope strays from 0.02 s/task"
    );
    assert!(line.r_squared > 0.98, "mean delay must be linear in L");
    println!("shape check OK: delay mean grows linearly at ~0.02 s/task");
}
