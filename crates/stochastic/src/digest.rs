//! Order-sensitive digests of numeric result vectors.
//!
//! Regression gates (pinned scenarios, the `perfreport` harness) need a
//! compact fingerprint of a Monte-Carlo output that changes whenever any
//! sampled value changes — by even one ULP — and is identical across
//! platforms and thread counts. FNV-1a over the IEEE-754 bit patterns has
//! exactly those properties: byte-exact inputs give byte-exact digests,
//! and the engine's determinism contract makes the inputs byte-exact.

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice.
#[must_use]
pub fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Order-sensitive digest of a float sequence: FNV-1a over the
/// little-endian IEEE-754 bit patterns. `-0.0` and `0.0` digest
/// differently, as do NaNs with different payloads — the digest refuses to
/// paper over any bit-level drift.
#[must_use]
pub fn digest_f64s(xs: &[f64]) -> u64 {
    let mut h = FNV_OFFSET;
    for &x in xs {
        for b in x.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// Streaming FNV-1a hasher for composite fingerprints.
///
/// Where [`fnv1a_bytes`] digests one contiguous slice, `Fnv1a` folds many
/// heterogeneous fields into one digest without materialising an
/// intermediate buffer: feed byte slices and integers in a fixed order and
/// call [`Fnv1a::finish`]. Feeding the concatenation of the same bytes
/// through [`fnv1a_bytes`] yields the identical value — the streaming form
/// is a pure refactoring of the one-shot loop.
#[derive(Clone, Debug)]
pub struct Fnv1a {
    state: u64,
}

impl Fnv1a {
    /// Fresh hasher at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Folds a byte slice into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a `u64` into the digest as its little-endian bytes — the
    /// convention [`digest_f64s`] uses for float bit patterns, so
    /// `update_u64(x.to_bits())` matches it exactly.
    pub fn update_u64(&mut self, value: u64) {
        self.update(&value.to_le_bytes());
    }

    /// Current digest value.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_the_offset_basis() {
        assert_eq!(digest_f64s(&[]), FNV_OFFSET);
        assert_eq!(fnv1a_bytes(&[]), FNV_OFFSET);
        assert_eq!(Fnv1a::new().finish(), FNV_OFFSET);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let mut h = Fnv1a::new();
        h.update(b"hello, ");
        h.update(b"world");
        assert_eq!(h.finish(), fnv1a_bytes(b"hello, world"));
    }

    #[test]
    fn streaming_u64_matches_float_digest() {
        let xs = [3.25f64, -17.5, 0.1];
        let mut h = Fnv1a::new();
        for x in xs {
            h.update_u64(x.to_bits());
        }
        assert_eq!(h.finish(), digest_f64s(&xs));
    }

    #[test]
    fn known_fnv1a_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c (published test vector).
        assert_eq!(fnv1a_bytes(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn digest_is_order_sensitive() {
        assert_ne!(digest_f64s(&[1.0, 2.0]), digest_f64s(&[2.0, 1.0]));
    }

    #[test]
    fn digest_sees_single_ulp_changes() {
        let x = 1.0f64;
        let bumped = f64::from_bits(x.to_bits() + 1);
        assert_ne!(digest_f64s(&[x]), digest_f64s(&[bumped]));
    }

    #[test]
    fn digest_distinguishes_signed_zero() {
        assert_ne!(digest_f64s(&[0.0]), digest_f64s(&[-0.0]));
    }

    #[test]
    fn digest_matches_byte_equivalent() {
        let xs = [3.25f64, -17.5, 0.1];
        let mut bytes = Vec::new();
        for x in xs {
            bytes.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        assert_eq!(digest_f64s(&xs), fnv1a_bytes(&bytes));
    }
}
