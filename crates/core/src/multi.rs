//! Multi-node preemptive balancing — the n-node generalisation of LBP-1.
//!
//! The paper defines LBP-1 for two nodes and remarks (§1) that the
//! analysis extends to multiple nodes. The natural n-node preemptive
//! policy combines the pieces the paper already provides:
//!
//! * the excess-load partition of Eqs. 6–7 decides *who* sends *what
//!   fraction* to *whom* — but computed with **availability-discounted
//!   service rates** `λ_di · λ_ri/(λ_fi+λ_ri)`, so an unreliable node's
//!   fair share shrinks exactly the way the two-node optimum shrinks `K`
//!   (Fig. 3);
//! * a single gain `K` attenuates everything, tuned either by the exact
//!   small-n model ([`churnbal_model::multinode`]) or by Monte-Carlo
//!   ([`crate::optimizer`]);
//! * like LBP-1, it acts once at `t = 0` and never again.

use churnbal_cluster::{Policy, SystemView, TransferOrder};

use crate::excess;

/// The n-node preemptive policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Lbp1Multi {
    gain: f64,
    availability_weighted: bool,
}

impl Lbp1Multi {
    /// Preemptive n-node balancing with gain `K`, availability-weighted.
    ///
    /// # Panics
    /// Panics unless `K ∈ [0, 1]`.
    #[must_use]
    pub fn new(gain: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&gain),
            "gain K must be in [0,1], got {gain}"
        );
        Self {
            gain,
            availability_weighted: true,
        }
    }

    /// Ablation: ignore availability (use raw service rates, i.e. the
    /// churn-blind Eq. 6 shares).
    #[must_use]
    pub fn churn_blind(mut self) -> Self {
        self.availability_weighted = false;
        self
    }

    /// The gain `K`.
    #[must_use]
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// Effective weight of node `i`: service rate,
    /// availability-discounted when enabled.
    fn weight(&self, view: &SystemView<'_>, i: usize) -> f64 {
        if self.availability_weighted {
            view.service_rate[i] * view.availability(i)
        } else {
            view.service_rate[i]
        }
    }

    /// The `t = 0` orders, appended to `orders` without allocating — the
    /// hot-path form used by the `on_start` hook. Neighbor-local under a
    /// topology (each sender partitions its neighborhood excess over its
    /// neighbors); identical to the global scan on the complete graph.
    pub fn initial_orders_into(&self, view: &SystemView<'_>, orders: &mut Vec<TransferOrder>) {
        if view.topology.is_none() {
            excess::balancing_orders_into(
                view.len(),
                |i| view.queue_len[i],
                |i| self.weight(view, i),
                self.gain,
                orders,
            );
        } else {
            for j in 0..view.len() {
                excess::local_balancing_orders_into(
                    j,
                    view.neighbors(j),
                    |i| view.queue_len[i],
                    |i| self.weight(view, i),
                    self.gain,
                    orders,
                );
            }
        }
    }

    /// The `t = 0` orders as a fresh vector (convenience/diagnostic form
    /// of [`Lbp1Multi::initial_orders_into`]).
    #[must_use]
    pub fn initial_orders(&self, view: &SystemView<'_>) -> Vec<TransferOrder> {
        let mut orders = Vec::new();
        self.initial_orders_into(view, &mut orders);
        orders
    }
}

impl Policy for Lbp1Multi {
    fn name(&self) -> &str {
        if self.availability_weighted {
            "LBP-1 multi-node (availability-weighted)"
        } else {
            "LBP-1 multi-node (churn-blind)"
        }
    }

    fn on_start(&mut self, view: &SystemView<'_>, orders: &mut Vec<TransferOrder>) {
        self.initial_orders_into(view, orders);
    }
    // Preemptive: no reaction to failures, recoveries or arrivals.
}

#[cfg(test)]
mod tests {
    use super::*;
    use churnbal_cluster::{
        run_replications, simulate, NetworkConfig, NodeConfig, SimOptions, SystemConfig,
    };

    fn grid() -> SystemConfig {
        SystemConfig::new(
            vec![
                NodeConfig::reliable(1.0, 200),
                NodeConfig::new(1.5, 0.05, 0.05, 0), // fast but 50% available
                NodeConfig::new(1.0, 0.02, 0.2, 40), // ~91% available
            ],
            NetworkConfig::exponential(0.02),
        )
    }

    #[test]
    fn acts_once_and_completes() {
        let cfg = grid();
        let mut p = Lbp1Multi::new(1.0);
        let out = simulate(&cfg, &mut p, 1, SimOptions::default());
        assert!(out.completed);
        assert!(out.metrics.transfers >= 1);
        // All transfers happen at t = 0; shipped count equals the initial
        // orders' total regardless of churn afterwards.
        let initial: u64 = 1; // at least one batch, none later: verify via
                              // a no-churn twin below.
        let _ = initial;
    }

    #[test]
    fn availability_weighting_ships_less_to_flaky_nodes() {
        let cfg = grid();
        let nodes: Vec<churnbal_cluster::NodeView> = cfg
            .nodes
            .iter()
            .enumerate()
            .map(|(id, n)| churnbal_cluster::NodeView {
                id,
                queue_len: n.initial_tasks,
                up: true,
                service_rate: n.service_rate,
                failure_rate: n.failure_rate,
                recovery_rate: n.recovery_rate,
            })
            .collect();
        let snap = churnbal_cluster::SystemSnapshot::from_nodes(&nodes).with_context(0.0, 0.02, 0);
        let aware = Lbp1Multi::new(1.0).initial_orders(&snap.view());
        let blind = Lbp1Multi::new(1.0)
            .churn_blind()
            .initial_orders(&snap.view());
        let to_flaky = |orders: &[TransferOrder]| -> u64 {
            orders
                .iter()
                .filter(|o| o.to == 1)
                .map(|o| u64::from(o.tasks))
                .sum()
        };
        assert!(
            to_flaky(&aware) < to_flaky(&blind),
            "availability weighting must shrink the flaky node's share ({} vs {})",
            to_flaky(&aware),
            to_flaky(&blind)
        );
    }

    #[test]
    fn two_node_case_approximates_lbp1() {
        // On a two-node system the multi policy is LBP-1 with L =
        // K·(availability-weighted excess); sanity: its MC mean lands close
        // to the model-optimal LBP-1 for a reasonable K.
        let cfg = SystemConfig::paper([100, 60]);
        let est = run_replications(
            &cfg,
            &|_| Lbp1Multi::new(0.9),
            500,
            3,
            0,
            SimOptions::default(),
        );
        // Model optimum is ≈ 116.8 s; a decent preemptive heuristic should
        // land within ~10%.
        assert!(
            (est.mean() - 116.8).abs() / 116.8 < 0.10,
            "multi-node heuristic mean {} strays from the LBP-1 optimum",
            est.mean()
        );
    }

    #[test]
    fn beats_no_balancing_on_the_grid() {
        let cfg = grid();
        let reps = 400;
        let none = run_replications(
            &cfg,
            &|_| churnbal_cluster::NoBalancing,
            reps,
            5,
            0,
            SimOptions::default(),
        );
        let multi = run_replications(
            &cfg,
            &|_| Lbp1Multi::new(1.0),
            reps,
            5,
            0,
            SimOptions::default(),
        );
        assert!(
            multi.mean() < none.mean() * 0.8,
            "preemptive spread {} should clearly beat hoarding {}",
            multi.mean(),
            none.mean()
        );
    }

    #[test]
    #[should_panic(expected = "in [0,1]")]
    fn bad_gain_rejected() {
        let _ = Lbp1Multi::new(2.0);
    }

    #[test]
    fn topology_constrained_initial_orders_follow_edges() {
        use churnbal_cluster::{SystemSnapshot, Topology};
        let nodes: Vec<churnbal_cluster::NodeView> = (0..6)
            .map(|id| churnbal_cluster::NodeView {
                id,
                queue_len: if id == 0 { 120 } else { 0 },
                up: true,
                service_rate: 1.0,
                failure_rate: 0.02,
                recovery_rate: 0.2,
            })
            .collect();
        let topo = Topology::ring(6).expect("valid ring");
        let snap = SystemSnapshot::from_nodes(&nodes)
            .with_context(0.0, 0.02, 0)
            .with_topology(topo);
        let topo = Topology::ring(6).expect("valid ring");
        let orders = Lbp1Multi::new(1.0).initial_orders(&snap.view());
        assert!(!orders.is_empty());
        for o in &orders {
            assert!(topo.contains_edge(o.from, o.to), "{o:?} off the ring");
        }
    }
}
