//! Higher moments of the time to absorption.
//!
//! The paper reports only the *mean* completion time (and, via Eq. 5, the
//! CDF). The same first-step argument gives every moment: writing
//! `T_x = H_x + T_Y` with `H_x ~ Exp(Λ_x)` independent of the next state
//! `Y`,
//!
//! ```text
//! E[T²_x] = 2/Λ_x² + (2/Λ_x)·Σ_y p_xy E[T_y] + Σ_y p_xy E[T²_y]
//! ```
//!
//! — another linear system with the *same* matrix as the mean, a new
//! right-hand side. Variances quantify the *risk* of a balancing plan,
//! which the deadline-driven example (`examples/analytic_cdf.rs`) shows
//! can rank gains differently from the mean.

use crate::absorb::{expected_absorption_times_with, AbsorbOptions};
use crate::chain::{Chain, ABSORBING};

/// First two moments of the absorption time from every transient state.
#[derive(Clone, Debug)]
pub struct AbsorptionMoments {
    /// `E[T]` per state.
    pub mean: Vec<f64>,
    /// `E[T²]` per state.
    pub second: Vec<f64>,
}

impl AbsorptionMoments {
    /// Variance of the absorption time from state `i`.
    #[must_use]
    pub fn variance(&self, i: usize) -> f64 {
        (self.second[i] - self.mean[i] * self.mean[i]).max(0.0)
    }

    /// Standard deviation of the absorption time from state `i`.
    #[must_use]
    pub fn std_dev(&self, i: usize) -> f64 {
        self.variance(i).sqrt()
    }

    /// Squared coefficient of variation from state `i` (1 for an
    /// exponential; < 1 means more predictable than memoryless).
    ///
    /// # Panics
    /// Panics when the mean is zero.
    #[must_use]
    pub fn cv2(&self, i: usize) -> f64 {
        assert!(self.mean[i] > 0.0, "CV² undefined for zero mean");
        self.variance(i) / (self.mean[i] * self.mean[i])
    }
}

/// Computes `E[T]` and `E[T²]` for every transient state.
///
/// # Panics
/// Panics if absorption is unreachable from some state or the solver
/// fails to converge.
#[must_use]
pub fn absorption_moments(chain: &Chain) -> AbsorptionMoments {
    absorption_moments_with(chain, AbsorbOptions::default())
}

/// [`absorption_moments`] with explicit solver options.
#[must_use]
pub fn absorption_moments_with(chain: &Chain, opts: AbsorbOptions) -> AbsorptionMoments {
    let mean = expected_absorption_times_with(chain, opts);
    let n = chain.num_states();
    // Gauss-Seidel on the second-moment system; same contraction as the
    // mean system (same matrix), so the same convergence guarantees.
    let mut second = vec![0.0f64; n];
    for _ in 0..opts.max_iters {
        let mut max_delta: f64 = 0.0;
        let mut max_value: f64 = 0.0;
        for i in 0..n {
            let exit = chain.exit_rate(i);
            let mut t_next = 0.0; // Σ r_xy · E[T_y]
            let mut t2_next = 0.0; // Σ r_xy · E[T²_y]
            for (target, rate) in chain.transitions(i) {
                if target != ABSORBING {
                    t_next += rate * mean[target];
                    t2_next += rate * second[target];
                }
            }
            // Multiply the moment identity through by Λ:
            //   Λ·E[T²_x] = 2/Λ + 2·Σ r p t_y ... careful with scaling:
            //   E[T²_x] = 2/Λ² + (2/Λ)Σ p_y t_y + Σ p_y t2_y
            // with p_y = r_xy/Λ:
            let new = 2.0 / (exit * exit) + (2.0 / (exit * exit)) * t_next + t2_next / exit;
            max_delta = max_delta.max((new - second[i]).abs());
            max_value = max_value.max(new.abs());
            second[i] = new;
        }
        if max_delta <= opts.tolerance * max_value.max(1.0) {
            return AbsorptionMoments { mean, second };
        }
    }
    panic!("second-moment Gauss-Seidel failed to converge");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Chain;
    use crate::explore::explore;

    #[test]
    fn single_stage_moments_are_exponential() {
        let rate = 2.0;
        let c = Chain::from_rows(vec![vec![(ABSORBING, rate)]]);
        let m = absorption_moments(&c);
        assert!((m.mean[0] - 0.5).abs() < 1e-9);
        assert!((m.second[0] - 2.0 / (rate * rate)).abs() < 1e-9);
        assert!((m.cv2(0) - 1.0).abs() < 1e-9, "exponential has CV² = 1");
    }

    #[test]
    fn erlang_variance_is_k_over_lambda_squared() {
        let (k, lambda) = (12u32, 1.86);
        let e = explore(
            &[k],
            |&s| {
                if s == 1 {
                    vec![(lambda, None)]
                } else {
                    vec![(lambda, Some(s - 1))]
                }
            },
            100,
        );
        let m = absorption_moments(&e.chain);
        let start = e.index(&k).expect("start");
        let var_expected = f64::from(k) / (lambda * lambda);
        assert!(
            (m.variance(start) - var_expected).abs() < 1e-6,
            "{} vs {var_expected}",
            m.variance(start)
        );
        assert!((m.cv2(start) - 1.0 / f64::from(k)).abs() < 1e-9);
    }

    #[test]
    fn hyperexponential_like_chain_has_cv2_above_one() {
        // Branching start: fast path (rate 10) w.p. ~0.9, slow (0.1) w.p. ~0.1.
        let c = Chain::from_rows(vec![
            vec![(1, 9.0), (2, 1.0)],
            vec![(ABSORBING, 10.0)],
            vec![(ABSORBING, 0.1)],
        ]);
        let m = absorption_moments(&c);
        assert!(
            m.cv2(0) > 1.0,
            "mixture must be over-dispersed, got {}",
            m.cv2(0)
        );
    }

    #[test]
    fn variance_is_nonnegative_and_consistent() {
        let c = Chain::from_rows(vec![
            vec![(1, 1.0), (ABSORBING, 0.5)],
            vec![(0, 0.3), (ABSORBING, 2.0)],
        ]);
        let m = absorption_moments(&c);
        for i in 0..2 {
            assert!(m.variance(i) >= 0.0);
            assert!(m.std_dev(i) * m.std_dev(i) - m.variance(i) < 1e-9);
            assert!(m.second[i] >= m.mean[i] * m.mean[i]);
        }
    }
}
