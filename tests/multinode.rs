//! Integration: beyond two nodes. The paper claims the theory "can be
//! extended to a multi-node system in a straightforward way" (§1); the
//! simulator and the Eq. 6–8 machinery are n-node already, and the exact
//! CTMC validates them at n = 3.

use churnbal::ctmc::{expected_absorption_times, explore};
use churnbal::prelude::*;

/// Exact 3-node no-policy completion time vs Monte-Carlo.
#[test]
fn three_node_no_policy_matches_exact_ctmc() {
    let nodes = [
        NodeConfig::new(1.0, 0.05, 0.1, 6),
        NodeConfig::new(2.0, 0.05, 0.05, 4),
        NodeConfig::reliable(1.5, 5),
    ];
    let config = SystemConfig::new(nodes.to_vec(), NetworkConfig::exponential(0.05));

    // State: queues + up-mask. No transfers (NoBalancing).
    #[derive(Clone, PartialEq, Eq, Hash)]
    struct S {
        m: [u32; 3],
        up: u8,
    }
    let explored = explore(
        &[S {
            m: [6, 4, 5],
            up: 0b111,
        }],
        |s| {
            let mut out: Vec<(f64, Option<S>)> = Vec::new();
            let total: u32 = s.m.iter().sum();
            for (i, node) in nodes.iter().enumerate() {
                let up = s.up & (1 << i) != 0;
                if up {
                    if s.m[i] > 0 {
                        let mut n = s.clone();
                        n.m[i] -= 1;
                        out.push((node.service_rate, if total == 1 { None } else { Some(n) }));
                    }
                    if node.failure_rate > 0.0 {
                        let mut n = s.clone();
                        n.up &= !(1 << i);
                        out.push((node.failure_rate, Some(n)));
                    }
                } else {
                    let mut n = s.clone();
                    n.up |= 1 << i;
                    out.push((node.recovery_rate, Some(n)));
                }
            }
            out
        },
        1_000_000,
    );
    let idx = explored
        .index(&S {
            m: [6, 4, 5],
            up: 0b111,
        })
        .expect("initial");
    let exact = expected_absorption_times(&explored.chain)[idx];

    let mc = run_replications(&config, &|_| NoBalancing, 6000, 3, 0, SimOptions::default());
    assert!(
        (mc.mean() - exact).abs() < 3.0 * mc.ci95(),
        "3-node exact {exact:.3} vs MC {:.3} ± {:.3}",
        mc.mean(),
        mc.ci95()
    );
}

/// Eq. 6–7 initial balancing at n = 3 moves load toward fast idle nodes
/// and helps.
#[test]
fn three_node_lbp2_beats_no_balancing() {
    let config = SystemConfig::new(
        vec![
            NodeConfig::new(1.0, 0.05, 0.1, 120),
            NodeConfig::new(2.0, 0.05, 0.05, 0),
            NodeConfig::reliable(1.5, 0),
        ],
        NetworkConfig::exponential(0.02),
    );
    let reps = 1500;
    let none = run_replications(&config, &|_| NoBalancing, reps, 7, 0, SimOptions::default());
    let lbp2 = run_replications(
        &config,
        &|_| Lbp2::new(1.0),
        reps,
        7,
        0,
        SimOptions::default(),
    );
    assert!(
        lbp2.mean() < none.mean() * 0.75,
        "3-node LBP-2 {:.2} should clearly beat no-balancing {:.2}",
        lbp2.mean(),
        none.mean()
    );
}

/// The Eq. 7 partition at n = 3 sends more of the excess to the node with
/// the smaller *relative* load `m/λ_d` (observable through processed-task
/// counts). Note the receivers must hold some load: with both receivers
/// empty, Eq. 6 degenerates and the split is uniform by convention.
#[test]
fn partition_prefers_fast_receivers_in_simulation() {
    let config = SystemConfig::new(
        vec![
            NodeConfig::reliable(1.0, 150),
            NodeConfig::reliable(3.0, 30), // relative load 10
            NodeConfig::reliable(1.0, 30), // relative load 30 -> receives less
        ],
        NetworkConfig::exponential(0.01),
    );
    let mut policy = InitialBalanceOnly::new(1.0);
    let out = simulate(&config, &mut policy, 5, SimOptions::default());
    assert!(out.completed);
    assert!(
        out.metrics.processed_per_node[1] > out.metrics.processed_per_node[2],
        "fast node should receive (and process) more of the excess: {:?}",
        out.metrics.processed_per_node
    );
}

/// Five-node volunteer-grid smoke: dedicated + churning volunteers, LBP-2
/// completes and uses the volunteers.
#[test]
fn five_node_volunteer_grid_smoke() {
    let config = SystemConfig::new(
        vec![
            NodeConfig::reliable(2.0, 100),
            NodeConfig::reliable(1.5, 80),
            NodeConfig::new(1.2, 1.0 / 15.0, 1.0 / 10.0, 0),
            NodeConfig::new(1.2, 1.0 / 15.0, 1.0 / 10.0, 0),
            NodeConfig::new(1.0, 1.0 / 10.0, 1.0 / 10.0, 0),
        ],
        NetworkConfig::exponential(0.05),
    );
    let mut policy = Lbp2::new(1.0);
    let out = simulate(&config, &mut policy, 9, SimOptions::default());
    assert!(out.completed);
    let volunteer_work: u64 = out.metrics.processed_per_node[2..].iter().sum();
    assert!(volunteer_work > 0, "volunteers must contribute");
}
