//! # churnbal-stochastic
//!
//! Reproducible randomness and statistics for the `churnbal` suite.
//!
//! The crate provides:
//!
//! * [`rng`] — a self-contained xoshiro256++ PRNG with SplitMix64 seeding and
//!   a [`rng::StreamFactory`] that derives *independent, replayable* streams
//!   (one per Monte-Carlo replication / per stochastic process), so results
//!   are bit-identical regardless of how many worker threads consume them.
//! * [`dist`] — the distributions the paper's model uses (exponential above
//!   all) plus richer ones used by the test-bed simulator.
//! * [`stats`] — Welford online moments, confidence intervals and mergeable
//!   summaries for parallel reduction.
//! * [`histogram`] / [`ecdf`] — empirical density and distribution estimates
//!   (Figs. 1–2 of the paper), with a Kolmogorov–Smirnov distance, plus the
//!   log-bucketed [`LogHistogram`] the observability layer merges across
//!   replications with exact integer bucket math.
//! * [`regression`] — ordinary least-squares line fit (Fig. 2, mean transfer
//!   delay vs. batch size).
//! * [`fit`] — moment/MLE fitting of exponential laws to samples.
//! * [`digest`] — FNV-1a fingerprints of result vectors, the currency of
//!   the suite's pinned-scenario regression gates and `perfreport`.
//!
//! Everything is `no_std`-shaped plain Rust with zero runtime dependencies;
//! determinism across platforms is part of the contract and is covered by
//! tests.

pub mod digest;
pub mod dist;
pub mod ecdf;
pub mod fit;
pub mod histogram;
pub mod regression;
pub mod rng;
pub mod stats;

pub use digest::{digest_f64s, fnv1a_bytes, Fnv1a};
pub use dist::{
    Deterministic, Empirical, Erlang, Exponential, HyperExponential, Sample, ShiftedExponential,
    Uniform,
};
pub use ecdf::Ecdf;
pub use histogram::{Histogram, LogHistogram};
pub use rng::{BatchedRng, SplitMix64, StreamFactory, Xoshiro256pp, RNG_BATCH};
pub use stats::{
    paired_comparison, t_ci95_half_width, t_critical_95, OnlineStats, PairedComparison,
};
