//! Declarative policy construction.
//!
//! [`PolicySpec`] is a plain-data description of any policy the suite
//! implements; [`PolicySpec::build`] turns it into a runnable boxed
//! [`AnyPolicy`] against a concrete [`SystemConfig`]. The scenario lab
//! (`churnbal_lab`) serializes these specs to its TOML subset, and sweep
//! axes rewrite them (e.g. the gain) without touching policy code.

use churnbal_cluster::{NoBalancing, Policy, SystemConfig, SystemView, TransferOrder};

use crate::baseline::{InitialBalanceOnly, UponFailureOnly};
use crate::dynamic::{DynamicLbp1, EpisodicLbp2};
use crate::lbp1::Lbp1;
use crate::lbp2::Lbp2;

/// A type-erased, heap-allocated policy — what [`PolicySpec::build`]
/// returns, so heterogeneous policies can flow through one code path.
pub struct AnyPolicy {
    inner: Box<dyn Policy>,
}

impl std::fmt::Debug for AnyPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnyPolicy")
            .field("name", &self.inner.name())
            .finish()
    }
}

impl AnyPolicy {
    /// Wraps a concrete policy.
    #[must_use]
    pub fn new(policy: impl Policy + 'static) -> Self {
        Self {
            inner: Box::new(policy),
        }
    }
}

impl Policy for AnyPolicy {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn on_start(&mut self, view: &SystemView<'_>, orders: &mut Vec<TransferOrder>) {
        self.inner.on_start(view, orders);
    }

    fn on_failure(&mut self, node: usize, view: &SystemView<'_>, orders: &mut Vec<TransferOrder>) {
        self.inner.on_failure(node, view, orders);
    }

    fn on_recovery(&mut self, node: usize, view: &SystemView<'_>, orders: &mut Vec<TransferOrder>) {
        self.inner.on_recovery(node, view, orders);
    }

    fn on_transfer_arrival(
        &mut self,
        node: usize,
        tasks: u32,
        view: &SystemView<'_>,
        orders: &mut Vec<TransferOrder>,
    ) {
        self.inner.on_transfer_arrival(node, tasks, view, orders);
    }

    fn on_external_arrival(
        &mut self,
        node: usize,
        tasks: u32,
        view: &SystemView<'_>,
        orders: &mut Vec<TransferOrder>,
    ) {
        self.inner.on_external_arrival(node, tasks, view, orders);
    }
}

/// Plain-data description of a policy, buildable against any
/// [`SystemConfig`].
#[derive(Clone, Debug, PartialEq)]
pub enum PolicySpec {
    /// The do-nothing baseline.
    NoBalancing,
    /// Fixed-orientation LBP-1: ship `round(gain · m_sender)` at `t = 0`.
    Lbp1 {
        /// Sending node index.
        sender: usize,
        /// Receiving node index.
        receiver: usize,
        /// Gain `K ∈ [0, 1]` applied to the sender's initial queue.
        gain: f64,
    },
    /// Model-optimal LBP-1 (two-node configurations only).
    Lbp1Optimal,
    /// LBP-2 with the given initial gain and full Eq. 8 compensation.
    Lbp2 {
        /// Initial-balancing gain `K ∈ [0, 1]`.
        gain: f64,
    },
    /// LBP-2 with the no-failure-model optimal initial gain (two nodes).
    Lbp2Optimal,
    /// LBP-2 re-running its balancing episode at every external arrival.
    EpisodicLbp2 {
        /// Episode gain `K ∈ [0, 1]`.
        gain: f64,
    },
    /// LBP-1 re-optimised at every external arrival (two nodes).
    DynamicLbp1,
    /// Initial balancing only, no failure compensation.
    InitialBalanceOnly {
        /// Initial-balancing gain `K ∈ [0, 1]`.
        gain: f64,
    },
    /// Eq. 8 failure compensation only, no initial balancing.
    UponFailureOnly,
    /// Fault-injection fixture: behaves as [`PolicySpec::NoBalancing`]
    /// except that replication `rep` panics at its first policy callback.
    /// Exists to exercise the executor's panic quarantine end-to-end
    /// (crash-safety tests, CI smoke); never a real balancing policy.
    ChaosPanic {
        /// Replication index whose worker panics.
        rep: u64,
    },
}

impl PolicySpec {
    /// Stable kebab-case identifier, as used by the scenario lab's TOML.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Self::NoBalancing => "no-balancing",
            Self::Lbp1 { .. } => "lbp1",
            Self::Lbp1Optimal => "lbp1-optimal",
            Self::Lbp2 { .. } => "lbp2",
            Self::Lbp2Optimal => "lbp2-optimal",
            Self::EpisodicLbp2 { .. } => "episodic-lbp2",
            Self::DynamicLbp1 => "dynamic-lbp1",
            Self::InitialBalanceOnly { .. } => "initial-only",
            Self::UponFailureOnly => "upon-failure-only",
            Self::ChaosPanic { .. } => "chaos-panic",
        }
    }

    /// The spec's gain parameter, when it has one.
    #[must_use]
    pub fn gain(&self) -> Option<f64> {
        match self {
            Self::Lbp1 { gain, .. }
            | Self::Lbp2 { gain }
            | Self::EpisodicLbp2 { gain }
            | Self::InitialBalanceOnly { gain } => Some(*gain),
            _ => None,
        }
    }

    /// Returns a copy with the gain replaced — how a sweep's `gain` axis
    /// rewrites the policy.
    ///
    /// # Errors
    /// Fails when the policy has no gain parameter or the value is outside
    /// `[0, 1]`.
    pub fn with_gain(&self, gain: f64) -> Result<Self, String> {
        if !(0.0..=1.0).contains(&gain) {
            return Err(format!(
                "policy {}: gain must be in [0, 1], got {gain}",
                self.kind()
            ));
        }
        match self {
            Self::Lbp1 {
                sender, receiver, ..
            } => Ok(Self::Lbp1 {
                sender: *sender,
                receiver: *receiver,
                gain,
            }),
            Self::Lbp2 { .. } => Ok(Self::Lbp2 { gain }),
            Self::EpisodicLbp2 { .. } => Ok(Self::EpisodicLbp2 { gain }),
            Self::InitialBalanceOnly { .. } => Ok(Self::InitialBalanceOnly { gain }),
            other => Err(format!(
                "policy {} has no gain parameter to sweep",
                other.kind()
            )),
        }
    }

    /// All stable kind identifiers, for help text and error messages.
    pub const KINDS: [&'static str; 10] = [
        "no-balancing",
        "lbp1",
        "lbp1-optimal",
        "lbp2",
        "lbp2-optimal",
        "episodic-lbp2",
        "dynamic-lbp1",
        "initial-only",
        "upon-failure-only",
        "chaos-panic",
    ];

    /// Parses a compact policy name — a [`PolicySpec::kind`] identifier
    /// (plus the shorthand `none`), optionally with an `@gain` suffix,
    /// e.g. `lbp2`, `none`, `lbp1@0.5`.
    ///
    /// `template` supplies structural parameters the name alone cannot: a
    /// name matching the template's kind inherits the template spec
    /// verbatim (so `lbp1` against a Fig. 3 scenario keeps its
    /// sender/receiver/gain); otherwise gains default to 1 and LBP-1
    /// ships node 0 → node 1. This is how `churnbal-lab compare
    /// --policies a,b,...` resolves its policy set against a scenario.
    ///
    /// # Errors
    /// Names the valid identifiers on an unknown name; propagates
    /// [`PolicySpec::with_gain`] failures for an `@gain` suffix on a
    /// gainless policy or an out-of-range value.
    pub fn parse(name: &str, template: &Self) -> Result<Self, String> {
        let name = name.trim();
        // chaos-panic's `@` suffix is a replication *index*, not a gain —
        // intercept it before the generic `kind@gain` split would force
        // the value through the [0, 1] gain check.
        if name == "chaos-panic" {
            return Ok(match template {
                Self::ChaosPanic { .. } => template.clone(),
                _ => Self::ChaosPanic { rep: 0 },
            });
        }
        if let Some(r) = name.strip_prefix("chaos-panic@") {
            let rep: u64 = r.trim().parse().map_err(|_| {
                format!(
                    "policy `{name}`: `{}` is not a replication index (expected \
                     `chaos-panic@rep`)",
                    r.trim()
                )
            })?;
            return Ok(Self::ChaosPanic { rep });
        }
        let (kind, gain) = match name.split_once('@') {
            None => (name, None),
            Some((kind, g)) => {
                let g: f64 = g.trim().parse().map_err(|_| {
                    format!("policy `{name}`: `{g}` is not a number (expected `kind@gain`)")
                })?;
                (kind.trim(), Some(g))
            }
        };
        let base = match kind {
            "none" | "no-balancing" => Self::NoBalancing,
            "lbp1" => match template {
                Self::Lbp1 { .. } => template.clone(),
                _ => Self::Lbp1 {
                    sender: 0,
                    receiver: 1,
                    gain: 1.0,
                },
            },
            "lbp1-optimal" => Self::Lbp1Optimal,
            "lbp2" => match template {
                Self::Lbp2 { .. } => template.clone(),
                _ => Self::Lbp2 { gain: 1.0 },
            },
            "lbp2-optimal" => Self::Lbp2Optimal,
            "episodic-lbp2" => match template {
                Self::EpisodicLbp2 { .. } => template.clone(),
                _ => Self::EpisodicLbp2 { gain: 1.0 },
            },
            "dynamic-lbp1" => Self::DynamicLbp1,
            "initial-only" => match template {
                Self::InitialBalanceOnly { .. } => template.clone(),
                _ => Self::InitialBalanceOnly { gain: 1.0 },
            },
            "upon-failure-only" => Self::UponFailureOnly,
            other => {
                return Err(format!(
                    "unknown policy `{other}` (known: none | {})",
                    Self::KINDS.join(" | ")
                ))
            }
        };
        match gain {
            None => Ok(base),
            Some(g) => base.with_gain(g),
        }
    }

    /// Checks the spec against a configuration without building.
    ///
    /// # Errors
    /// Fails with a precise message on out-of-range parameters or a policy
    /// that does not support the configuration's node count.
    pub fn validate_for(&self, config: &SystemConfig) -> Result<(), String> {
        let n = config.num_nodes();
        if let Some(g) = self.gain() {
            if !(0.0..=1.0).contains(&g) {
                return Err(format!(
                    "policy {}: gain must be in [0, 1], got {g}",
                    self.kind()
                ));
            }
        }
        match self {
            Self::Lbp1 {
                sender, receiver, ..
            } => {
                if *sender >= n || *receiver >= n {
                    return Err(format!(
                        "policy lbp1: node indices ({sender}, {receiver}) out of range for \
                         {n} nodes"
                    ));
                }
                if sender == receiver {
                    return Err("policy lbp1: sender and receiver must differ".into());
                }
                if let Some(topo) = config.topology() {
                    if !topo.contains_edge(*sender, *receiver) {
                        return Err(format!(
                            "policy lbp1: ({sender} -> {receiver}) is not an edge of the \
                             topology, so the transfer cannot be routed"
                        ));
                    }
                }
                Ok(())
            }
            Self::Lbp1Optimal | Self::Lbp2Optimal | Self::DynamicLbp1 => {
                if n == 2 {
                    Ok(())
                } else {
                    Err(format!(
                        "policy {}: the closed-form model covers exactly two nodes (got {n})",
                        self.kind()
                    ))
                }
            }
            _ => Ok(()),
        }
    }

    /// Builds a runnable policy for `config`.
    ///
    /// # Errors
    /// Same conditions as [`PolicySpec::validate_for`].
    pub fn build(&self, config: &SystemConfig) -> Result<AnyPolicy, String> {
        self.validate_for(config)?;
        Ok(match self {
            Self::NoBalancing => AnyPolicy::new(NoBalancing),
            Self::Lbp1 {
                sender,
                receiver,
                gain,
            } => AnyPolicy::new(Lbp1::with_gain(
                *sender,
                *receiver,
                config.nodes[*sender].initial_tasks,
                *gain,
            )),
            Self::Lbp1Optimal => AnyPolicy::new(Lbp1::optimal(config)),
            Self::Lbp2 { gain } => AnyPolicy::new(Lbp2::new(*gain)),
            Self::Lbp2Optimal => AnyPolicy::new(Lbp2::optimal(config)),
            Self::EpisodicLbp2 { gain } => AnyPolicy::new(EpisodicLbp2::new(*gain)),
            Self::DynamicLbp1 => AnyPolicy::new(DynamicLbp1::new(config)),
            Self::InitialBalanceOnly { gain } => AnyPolicy::new(InitialBalanceOnly::new(*gain)),
            Self::UponFailureOnly => AnyPolicy::new(UponFailureOnly::new()),
            // `build` has no replication index, so the fixture comes out
            // unarmed; [`PolicySpec::build_for_rep`] arms it.
            Self::ChaosPanic { .. } => AnyPolicy::new(ChaosPanicPolicy { armed: false }),
        })
    }

    /// Builds a runnable policy for `config` and replication `rep`.
    ///
    /// Identical to [`PolicySpec::build`] for every real policy — the
    /// replication index only matters to the [`PolicySpec::ChaosPanic`]
    /// fault-injection fixture, which arms its panic when `rep` matches
    /// the spec's target. Executors that know the replication index
    /// should prefer this entry point so chaos specs work end-to-end.
    ///
    /// # Errors
    /// Same conditions as [`PolicySpec::validate_for`].
    pub fn build_for_rep(&self, config: &SystemConfig, rep: u64) -> Result<AnyPolicy, String> {
        match self {
            Self::ChaosPanic { rep: target } => {
                self.validate_for(config)?;
                Ok(AnyPolicy::new(ChaosPanicPolicy {
                    armed: rep == *target,
                }))
            }
            _ => self.build(config),
        }
    }
}

/// Runtime form of [`PolicySpec::ChaosPanic`]: a do-nothing policy whose
/// armed replication panics at `on_start`, before any order is issued.
struct ChaosPanicPolicy {
    armed: bool,
}

impl Policy for ChaosPanicPolicy {
    fn name(&self) -> &str {
        "chaos-panic"
    }

    fn on_start(&mut self, _view: &SystemView<'_>, _orders: &mut Vec<TransferOrder>) {
        assert!(!self.armed, "chaos-panic: injected worker panic");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use churnbal_cluster::{simulate, NetworkConfig, NodeConfig, SimOptions};

    fn three_node() -> SystemConfig {
        SystemConfig::new(
            vec![
                NodeConfig::reliable(1.0, 30),
                NodeConfig::reliable(1.5, 0),
                NodeConfig::reliable(2.0, 0),
            ],
            NetworkConfig::exponential(0.02),
        )
    }

    #[test]
    fn built_policy_matches_direct_construction() {
        let cfg = SystemConfig::paper([100, 60]);
        let spec = PolicySpec::Lbp1 {
            sender: 0,
            receiver: 1,
            gain: 0.35,
        };
        let mut built = spec.build(&cfg).expect("valid");
        let mut direct = Lbp1::with_gain(0, 1, 100, 0.35);
        let a = simulate(&cfg, &mut built, 5, SimOptions::default());
        let b = simulate(&cfg, &mut direct, 5, SimOptions::default());
        assert_eq!(a.completion_time, b.completion_time);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(built.name(), "LBP-1");
    }

    #[test]
    fn every_kind_builds_on_a_two_node_config() {
        let cfg = SystemConfig::paper([50, 30]);
        let specs = [
            PolicySpec::NoBalancing,
            PolicySpec::Lbp1 {
                sender: 0,
                receiver: 1,
                gain: 0.4,
            },
            PolicySpec::Lbp1Optimal,
            PolicySpec::Lbp2 { gain: 1.0 },
            PolicySpec::Lbp2Optimal,
            PolicySpec::EpisodicLbp2 { gain: 1.0 },
            PolicySpec::DynamicLbp1,
            PolicySpec::InitialBalanceOnly { gain: 1.0 },
            PolicySpec::UponFailureOnly,
        ];
        for spec in specs {
            let mut p = spec
                .build(&cfg)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.kind()));
            let out = simulate(&cfg, &mut p, 9, SimOptions::default());
            assert!(out.completed, "{} did not complete", spec.kind());
        }
    }

    #[test]
    fn two_node_only_policies_reject_larger_systems() {
        let cfg = three_node();
        for spec in [
            PolicySpec::Lbp1Optimal,
            PolicySpec::Lbp2Optimal,
            PolicySpec::DynamicLbp1,
        ] {
            let err = spec.build(&cfg).unwrap_err();
            assert!(err.contains("two nodes"), "{err}");
        }
        // n-node-capable specs are fine.
        assert!(PolicySpec::Lbp2 { gain: 1.0 }.build(&cfg).is_ok());
    }

    #[test]
    fn bad_parameters_are_rejected_with_messages() {
        let cfg = SystemConfig::paper([10, 10]);
        let err = PolicySpec::Lbp1 {
            sender: 0,
            receiver: 5,
            gain: 0.5,
        }
        .build(&cfg)
        .unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        let err = PolicySpec::Lbp1 {
            sender: 1,
            receiver: 1,
            gain: 0.5,
        }
        .build(&cfg)
        .unwrap_err();
        assert!(err.contains("must differ"), "{err}");
        let err = PolicySpec::Lbp2 { gain: 1.5 }.build(&cfg).unwrap_err();
        assert!(err.contains("[0, 1]"), "{err}");
    }

    #[test]
    fn gain_rewrite_works_and_rejects_gainless_policies() {
        let spec = PolicySpec::Lbp2 { gain: 0.3 };
        assert_eq!(
            spec.with_gain(0.9).expect("ok"),
            PolicySpec::Lbp2 { gain: 0.9 }
        );
        let err = PolicySpec::NoBalancing.with_gain(0.5).unwrap_err();
        assert!(err.contains("no gain parameter"), "{err}");
        let err = PolicySpec::Lbp2 { gain: 0.3 }.with_gain(2.0).unwrap_err();
        assert!(err.contains("[0, 1]"), "{err}");
    }

    #[test]
    fn parse_resolves_names_against_a_template() {
        let fig3 = PolicySpec::Lbp1 {
            sender: 0,
            receiver: 1,
            gain: 0.35,
        };
        // Matching kind inherits the template verbatim.
        assert_eq!(PolicySpec::parse("lbp1", &fig3).expect("ok"), fig3);
        // Other kinds fall back to their defaults.
        assert_eq!(
            PolicySpec::parse("lbp2", &fig3).expect("ok"),
            PolicySpec::Lbp2 { gain: 1.0 }
        );
        assert_eq!(
            PolicySpec::parse("none", &fig3).expect("ok"),
            PolicySpec::NoBalancing
        );
        assert_eq!(
            PolicySpec::parse("no-balancing", &fig3).expect("ok"),
            PolicySpec::NoBalancing
        );
        // @gain overrides, keeping the template's structure.
        assert_eq!(
            PolicySpec::parse("lbp1@0.5", &fig3).expect("ok"),
            PolicySpec::Lbp1 {
                sender: 0,
                receiver: 1,
                gain: 0.5
            }
        );
        // Every stable kind parses against any template.
        for kind in PolicySpec::KINDS {
            let spec = PolicySpec::parse(kind, &fig3).unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert_eq!(spec.kind(), kind);
        }
    }

    #[test]
    fn parse_rejects_bad_names_and_gains() {
        let t = PolicySpec::NoBalancing;
        let err = PolicySpec::parse("lbp3", &t).unwrap_err();
        assert!(err.contains("unknown policy `lbp3`"), "{err}");
        assert!(err.contains("lbp2-optimal"), "lists the kinds: {err}");
        let err = PolicySpec::parse("none@0.5", &t).unwrap_err();
        assert!(err.contains("no gain parameter"), "{err}");
        let err = PolicySpec::parse("lbp2@1.5", &t).unwrap_err();
        assert!(err.contains("[0, 1]"), "{err}");
        let err = PolicySpec::parse("lbp2@x", &t).unwrap_err();
        assert!(err.contains("not a number"), "{err}");
    }

    #[test]
    fn lbp1_must_ride_a_topology_edge() {
        use churnbal_cluster::Topology;
        let cfg = SystemConfig::new(
            vec![
                NodeConfig::reliable(1.0, 40),
                NodeConfig::reliable(1.0, 0),
                NodeConfig::reliable(1.0, 0),
                NodeConfig::reliable(1.0, 0),
            ],
            NetworkConfig::exponential(0.02),
        )
        .with_topology(Topology::ring(4).expect("valid ring"));
        let on_edge = PolicySpec::Lbp1 {
            sender: 0,
            receiver: 1,
            gain: 0.5,
        };
        assert!(on_edge.validate_for(&cfg).is_ok());
        let off_edge = PolicySpec::Lbp1 {
            sender: 0,
            receiver: 2,
            gain: 0.5,
        };
        let err = off_edge.validate_for(&cfg).unwrap_err();
        assert!(err.contains("not an edge"), "{err}");
    }

    #[test]
    fn chaos_panic_parses_reps_and_arms_only_its_target() {
        let t = PolicySpec::NoBalancing;
        assert_eq!(
            PolicySpec::parse("chaos-panic", &t).expect("ok"),
            PolicySpec::ChaosPanic { rep: 0 }
        );
        assert_eq!(
            PolicySpec::parse("chaos-panic@7", &t).expect("ok"),
            PolicySpec::ChaosPanic { rep: 7 }
        );
        let err = PolicySpec::parse("chaos-panic@x", &t).unwrap_err();
        assert!(err.contains("not a replication index"), "{err}");
        // A matching template is inherited, like every other kind.
        let armed = PolicySpec::ChaosPanic { rep: 3 };
        assert_eq!(PolicySpec::parse("chaos-panic", &armed).expect("ok"), armed);

        let cfg = SystemConfig::paper([20, 12]);
        // Unarmed replications run to completion like no-balancing.
        let mut p = armed.build_for_rep(&cfg, 2).expect("valid");
        let out = simulate(&cfg, &mut p, 11, SimOptions::default());
        assert!(out.completed);
        // The armed replication panics at its first callback.
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut p = armed.build_for_rep(&cfg, 3).expect("valid");
            let _ = simulate(&cfg, &mut p, 11, SimOptions::default());
        }));
        assert!(panicked.is_err());
        // `build` (no replication index) never arms.
        let mut p = armed.build(&cfg).expect("valid");
        let out = simulate(&cfg, &mut p, 11, SimOptions::default());
        assert!(out.completed);
    }

    #[test]
    fn build_for_rep_matches_build_for_real_policies() {
        let cfg = SystemConfig::paper([50, 30]);
        let spec = PolicySpec::Lbp2 { gain: 0.8 };
        let mut a = spec.build(&cfg).expect("valid");
        let mut b = spec.build_for_rep(&cfg, 5).expect("valid");
        let oa = simulate(&cfg, &mut a, 3, SimOptions::default());
        let ob = simulate(&cfg, &mut b, 3, SimOptions::default());
        assert_eq!(oa.completion_time, ob.completion_time);
        assert_eq!(oa.metrics, ob.metrics);
    }

    #[test]
    fn kinds_are_stable_identifiers() {
        assert_eq!(PolicySpec::Lbp1Optimal.kind(), "lbp1-optimal");
        assert_eq!(PolicySpec::UponFailureOnly.kind(), "upon-failure-only");
        assert_eq!(
            PolicySpec::EpisodicLbp2 { gain: 1.0 }.kind(),
            "episodic-lbp2"
        );
    }
}
