//! The policy-crossover study (Table 3, finer grid): when does preemptive
//! LBP-1 overtake reactive LBP-2 as the network slows down?
//!
//! ```text
//! cargo run --release --example policy_crossover
//! ```
//!
//! Paper §4/§5: "when the network delays are small compared to the average
//! recovery times, LBP-2 outperforms LBP-1. In contrast, when the network
//! delays are large …, it is advantageous to use the LBP-1."

use churnbal::prelude::*;

fn main() {
    let m0 = [100u32, 60];
    let reps = 400;
    println!("policy crossover, workload (100, 60), {reps} MC reps per point\n");
    println!(
        "{:>14} {:>16} {:>18} {:>10}",
        "delay (s/task)", "LBP-1 model (s)", "LBP-2 MC (s)", "winner"
    );

    let mut crossover: Option<(f64, f64)> = None;
    let mut prev: Option<(f64, bool)> = None;
    for delay in [0.01, 0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0] {
        let mut config = SystemConfig::paper(m0);
        config.network = NetworkConfig::exponential(delay);
        let params = model_params(&config);
        let lbp1 = optimize_lbp1(&params, m0, WorkState::BOTH_UP);
        let k2 = Lbp2::optimal_initial_gain(&config);
        let lbp2 = run_replications(
            &config,
            &|_| Lbp2::new(k2),
            reps,
            5,
            0,
            SimOptions::default(),
        );
        let lbp2_wins = lbp2.mean() < lbp1.mean;
        println!(
            "{delay:>14.2} {:>16.2} {:>13.2} ± {:>4.2} {:>8}",
            lbp1.mean,
            lbp2.mean(),
            lbp2.ci95(),
            if lbp2_wins { "LBP-2" } else { "LBP-1" }
        );
        if let Some((d_prev, prev_wins)) = prev {
            if prev_wins && !lbp2_wins && crossover.is_none() {
                crossover = Some((d_prev, delay));
            }
        }
        prev = Some((delay, lbp2_wins));
    }
    match crossover {
        Some((lo, hi)) => {
            println!("\ncrossover between {lo} and {hi} s/task (paper: between 0.5 and 1 s)");
            println!(
                "mean recovery times are 10-20 s; the crossover sits where shipping a\n\
                 compensation batch costs a noticeable fraction of a recovery period."
            );
        }
        None => println!("\nno crossover in this sweep (increase the range)"),
    }
}
