//! The sweep scheduler: one shared worker pool over the flattened
//! `(grid point, replication)` index space.
//!
//! The Monte-Carlo runner of `mc` parallelises replications *within* one
//! system; a parameter sweep runs many systems, and driving them through
//! that runner point-by-point erects a thread barrier at every grid point
//! — workers idle whenever a point has fewer replications than the
//! machine has cores, and every point pays a fresh spawn/join round.
//! This module removes the barrier:
//!
//! * the whole grid is flattened into one task space, task `t` being the
//!   `r`-th replication of point `p` (points in grid order, replications
//!   in index order within a point);
//! * a fixed pool of workers claims **chunks** of that space from a single
//!   atomic cursor (a lock-light chunked work queue: claiming costs one
//!   `fetch_add`, and idle workers automatically "steal" whatever the
//!   busy ones have not claimed yet);
//! * each worker owns one long-lived [`Simulator`] and cycles it through
//!   [`Simulator::reset`] within a point and [`Simulator::rebind`] across
//!   points, so simulator allocations are per-worker, not per-point;
//! * results scatter into pre-sized **slot-stable** per-point buffers
//!   (atomic cells indexed by replication), and completed points drain
//!   through a reorder buffer so the caller's `on_point` callback fires in
//!   **grid order** even when a later point finishes first.
//!
//! Determinism: replication `r` of point `p` always runs on the streams
//! derived from `(jobs[p].seed, r)` — worker placement, thread count and
//! chunk size cannot change a single sampled value, only who computes it.
//! The in-order drain then makes the *observable output* (rows, bytes)
//! independent of scheduling too; both invariants are pinned by tests.
//!
//! [`run_grid_policies_streaming`] additionally flattens a **policy
//! axis** into the same task space: `N` policies evaluate per grid point
//! in one pass, every variant's replication `r` reusing the *identical*
//! `(seed, r)` streams — common random numbers across policies by
//! construction, which is what makes paired policy deltas a
//! variance-reduction device rather than a subtraction of noise.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use churnbal_stochastic::StreamFactory;

use crate::config::SystemConfig;
use crate::engine::{RunSummary, SimOptions, Simulator};
use crate::policy::Policy;
use crate::probe::ProbeReport;

/// One grid point to execute: a system, how many replications, and the
/// master seed its streams derive from.
#[derive(Clone, Copy, Debug)]
pub struct PointJob<'a> {
    /// The system under test.
    pub config: &'a SystemConfig,
    /// Replications to run (must be ≥ 1).
    pub reps: u64,
    /// Master seed: local replication `r` uses the streams of **global**
    /// replication `g = rep_base + r` (see [`PointJob::rep_base`]).
    pub seed: u64,
    /// Global index of this job's first replication on the `(seed, r)`
    /// stream map: local replication `r` runs as global replication
    /// `rep_base + r`. Round-based schedulers (the campaign engine) set
    /// this to the replications already accumulated, so every round
    /// continues the *same* deterministic stream sequence an unrounded
    /// `reps = rep_base + reps` job would have used. Plain sweeps leave
    /// it 0.
    pub rep_base: u64,
    /// Antithetic replication pairing: when set, global replication `2k`
    /// uses `subfactory(k)` and `2k+1` uses `subfactory(k).antithetic()`
    /// (all uniforms mirrored `≈ 1 − u`), negatively correlating each
    /// pair — a variance-reduction mode for campaign runs. When unset,
    /// global replication `g` uses `subfactory(g)` (the historical map).
    pub antithetic: bool,
    /// Engine options (deadline; traces are not collected by the
    /// scheduler).
    pub options: SimOptions,
}

impl PointJob<'_> {
    /// The `(seed, r)` stream map: the [`StreamFactory`] of this job's
    /// local replication `r`, honouring `rep_base` and `antithetic`.
    #[must_use]
    pub fn streams_for_rep(&self, r: u64) -> StreamFactory {
        let g = self.rep_base + r;
        if self.antithetic {
            let f = StreamFactory::new(self.seed).subfactory(g / 2);
            if g % 2 == 1 {
                f.antithetic()
            } else {
                f
            }
        } else {
            StreamFactory::new(self.seed).subfactory(g)
        }
    }
}

/// Slot-stable per-replication results of one completed grid point, in
/// replication order.
#[derive(Clone, Debug)]
pub struct PointStats {
    /// Completion time of each replication.
    pub completion_times: Vec<f64>,
    /// Failures observed in each replication.
    pub failures_per_rep: Vec<u64>,
    /// Tasks shipped in each replication.
    pub tasks_shipped_per_rep: Vec<u64>,
    /// Replications that hit the deadline without completing.
    pub incomplete: u64,
    /// Engine events dispatched across all replications.
    pub total_events: u64,
    /// Node recoveries summed across replications.
    pub total_recoveries: u64,
    /// Transfer batches summed across replications.
    pub total_transfers: u64,
    /// Tasks ordered by policies but clamped for lack of supply, summed
    /// across replications.
    pub total_tasks_clamped: u64,
    /// Tasks permanently lost by the transfer channel, summed across
    /// replications (always 0 under [`crate::ChannelModel::Reliable`]).
    pub total_tasks_lost: u64,
    /// Channel redelivery attempts summed across replications.
    pub total_retries: u64,
    /// Batches bounced off down destinations, summed across replications.
    pub total_bounces: u64,
    /// In-transit task·seconds summed across replications — the sum runs
    /// in replication order on the drain thread, so the float total is
    /// schedule-invariant.
    pub transit_task_seconds: f64,
    /// Per-replication probe telemetry, in replication order; empty when
    /// probing is off (see [`SimOptions::probe_dt`]).
    pub probes: Vec<ProbeReport>,
    /// Replication indices that were quarantined (panicked, or aborted by
    /// the [`SimOptions::task_timeout`] watchdog), in ascending order.
    /// Their slots in the per-replication vectors hold placeholder zeros
    /// and must be skipped by every estimator — see
    /// [`crate::mc::McEstimate::from_point_stats`].
    pub quarantined_reps: Vec<u64>,
}

/// One quarantined `(point, policy, replication)` task: the sweep kept
/// going without it, and the failure is reported here instead of tearing
/// the whole run down.
#[derive(Clone, Debug, PartialEq)]
pub struct QuarantineReport {
    /// Grid-point index.
    pub point: usize,
    /// Policy-variant index.
    pub policy: usize,
    /// Replication index within the point.
    pub rep: u64,
    /// The panic payload (for panicking tasks) or the watchdog verdict
    /// (for timed-out tasks).
    pub message: String,
}

/// Per-point result cells: replication-indexed atomics the workers
/// scatter into, plus the countdown that detects point completion.
struct PointCell {
    /// Completion times as `f64::to_bits`.
    times: Vec<AtomicU64>,
    failures: Vec<AtomicU64>,
    shipped: Vec<AtomicU64>,
    /// Bit `completed` per replication (1 = ran to completion).
    completed: Vec<AtomicBool>,
    /// Per-replication transit integrals as `f64::to_bits` — summed
    /// sequentially in replication order by [`PointCell::stats`], so the
    /// float total matches the inline schedule bit-exactly.
    transit: Vec<AtomicU64>,
    events: AtomicU64,
    recoveries: AtomicU64,
    transfers: AtomicU64,
    clamped: AtomicU64,
    lost: AtomicU64,
    retries: AtomicU64,
    bounces: AtomicU64,
    /// Per-replication probe reports, slot-stable like the atomics above
    /// (all `None` and never touched when probing is off).
    probes: Mutex<Vec<Option<ProbeReport>>>,
    /// Bit per replication: quarantined (panicked or timed out); its data
    /// slots hold placeholder zeros.
    quarantined: Vec<AtomicBool>,
    /// Replications still outstanding; the worker that decrements it to
    /// zero publishes the point.
    remaining: AtomicU64,
    /// Published flag the drain loop polls under the rendezvous lock.
    done: AtomicBool,
}

impl PointCell {
    fn new(reps: u64) -> Self {
        let n = usize::try_from(reps).expect("replication count fits usize");
        Self {
            times: (0..n).map(|_| AtomicU64::new(0)).collect(),
            failures: (0..n).map(|_| AtomicU64::new(0)).collect(),
            shipped: (0..n).map(|_| AtomicU64::new(0)).collect(),
            completed: (0..n).map(|_| AtomicBool::new(false)).collect(),
            transit: (0..n).map(|_| AtomicU64::new(0)).collect(),
            events: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
            transfers: AtomicU64::new(0),
            clamped: AtomicU64::new(0),
            lost: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            bounces: AtomicU64::new(0),
            probes: Mutex::new((0..n).map(|_| None).collect()),
            quarantined: (0..n).map(|_| AtomicBool::new(false)).collect(),
            remaining: AtomicU64::new(reps),
            done: AtomicBool::new(false),
        }
    }

    /// Reads the cells out as the caller-facing stats (called on the
    /// drain thread after the point is published).
    fn stats(&self) -> PointStats {
        let completion_times: Vec<f64> = self
            .times
            .iter()
            .map(|t| f64::from_bits(t.load(Ordering::Acquire)))
            .collect();
        let failures_per_rep: Vec<u64> = self
            .failures
            .iter()
            .map(|f| f.load(Ordering::Acquire))
            .collect();
        let tasks_shipped_per_rep: Vec<u64> = self
            .shipped
            .iter()
            .map(|s| s.load(Ordering::Acquire))
            .collect();
        let quarantined_reps: Vec<u64> = self
            .quarantined
            .iter()
            .enumerate()
            .filter(|(_, q)| q.load(Ordering::Acquire))
            .map(|(r, _)| r as u64)
            .collect();
        // Quarantined slots never completed, but they are lost, not
        // deadline-incomplete — count them in neither bucket.
        let incomplete = self
            .completed
            .iter()
            .zip(&self.quarantined)
            .filter(|(c, q)| !c.load(Ordering::Acquire) && !q.load(Ordering::Acquire))
            .count() as u64;
        let transit_task_seconds = self
            .transit
            .iter()
            .map(|t| f64::from_bits(t.load(Ordering::Acquire)))
            .sum();
        let probes = {
            let mut slots = self.probes.lock().expect("probe slots poisoned");
            slots.iter_mut().filter_map(Option::take).collect()
        };
        PointStats {
            completion_times,
            failures_per_rep,
            tasks_shipped_per_rep,
            incomplete,
            total_events: self.events.load(Ordering::Acquire),
            total_recoveries: self.recoveries.load(Ordering::Acquire),
            total_transfers: self.transfers.load(Ordering::Acquire),
            total_tasks_clamped: self.clamped.load(Ordering::Acquire),
            total_tasks_lost: self.lost.load(Ordering::Acquire),
            total_retries: self.retries.load(Ordering::Acquire),
            total_bounces: self.bounces.load(Ordering::Acquire),
            transit_task_seconds,
            probes,
            quarantined_reps,
        }
    }
}

/// Resolves the `threads = 0 means auto` convention shared with the
/// Monte-Carlo runner, clamped to the total task count.
fn resolve_threads(threads: usize, total_tasks: u64) -> usize {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        threads
    };
    threads
        .min(usize::try_from(total_tasks).unwrap_or(usize::MAX))
        .max(1)
}

/// Default chunk size: small enough to balance wildly unequal points
/// across workers, large enough that the claim `fetch_add` is noise.
/// Exposed through the `chunk = 0` convention.
fn resolve_chunk(chunk: usize, total_tasks: u64, threads: usize) -> u64 {
    if chunk != 0 {
        return chunk as u64;
    }
    // Aim for ~16 claims per worker, capped so tiny tails still spread.
    (total_tasks / (threads as u64 * 16)).clamp(1, 64)
}

/// Runtime instrumentation of one scheduler worker — wall-clock facts
/// about *how* the work was executed, deliberately separate from the
/// simulation results: counts depend on scheduling for `threads > 1` and
/// the timings always do, so nothing here is ever digested.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WorkerReport {
    /// `(point, policy, replication)` tasks this worker executed.
    pub tasks: u64,
    /// Chunks claimed from the shared cursor (0 on the inline path, which
    /// claims nothing).
    pub chunks: u64,
    /// Claim attempts that found the task space exhausted.
    pub idle_claims: u64,
    /// Simulator rebinds — grid-point transitions, including the first
    /// binding of the worker's long-lived simulator.
    pub rebinds: u64,
    /// Engine events this worker dispatched.
    pub events: u64,
    /// Wall-clock seconds spent inside replications (excludes claim and
    /// rendezvous overhead).
    pub busy_seconds: f64,
}

impl WorkerReport {
    /// Events per busy second (0 when nothing ran).
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        if self.busy_seconds > 0.0 {
            self.events as f64 / self.busy_seconds
        } else {
            0.0
        }
    }
}

/// Aggregated runtime instrumentation of one scheduler pass.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExecReport {
    /// One entry per worker, in spawn order (a single entry on the inline
    /// path).
    pub workers: Vec<WorkerReport>,
    /// Wall-clock seconds of the whole pass (spawn to drain).
    pub wall_seconds: f64,
    /// Tasks that panicked or timed out, sorted by
    /// `(point, policy, rep)`; empty on a clean pass. The sweep completed
    /// *around* these — their cells are degraded, never silently
    /// averaged.
    pub quarantines: Vec<QuarantineReport>,
}

impl ExecReport {
    /// Sums the per-worker rows.
    #[must_use]
    pub fn totals(&self) -> WorkerReport {
        let mut t = WorkerReport::default();
        for w in &self.workers {
            t.tasks += w.tasks;
            t.chunks += w.chunks;
            t.idle_claims += w.idle_claims;
            t.rebinds += w.rebinds;
            t.events += w.events;
            t.busy_seconds += w.busy_seconds;
        }
        t
    }

    /// Aggregate throughput: total engine events over the pass wall time.
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.totals().events as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

/// Executes every `(point, replication)` task of `jobs` on a shared
/// worker pool and hands each point's [`PointStats`] to `on_point` **in
/// grid order** as points complete (a reorder buffer holds points that
/// finish early). `make_policy(point, rep)` builds the policy for one
/// replication. `threads = 0` picks the available parallelism; results
/// are independent of `threads` and `chunk` (0 = auto) by construction.
///
/// The single-policy form of [`run_grid_policies_streaming`] — one
/// variant per point, so the flattened task order (and every sampled
/// byte) is exactly the pre-variant scheduler's.
///
/// With `threads == 1` no worker thread is spawned at all: the calling
/// thread executes the flattened task space in order, which is also the
/// bit-exact reference schedule for the parallel path.
///
/// # Errors
/// Propagates the first error `on_point` returns; remaining work is
/// abandoned (workers stop at their next chunk claim).
///
/// # Panics
/// Panics if any job has `reps == 0`. A panic *inside a task* does not
/// propagate: the replication is quarantined (see [`QuarantineReport`])
/// and the sweep completes degraded.
pub fn run_grid_streaming<P, F, G>(
    jobs: &[PointJob<'_>],
    make_policy: &F,
    threads: usize,
    chunk: usize,
    mut on_point: G,
) -> Result<(), String>
where
    P: Policy,
    F: Fn(usize, u64) -> P + Sync,
    G: FnMut(usize, PointStats) -> Result<(), String>,
{
    run_grid_policies_streaming(
        jobs,
        1,
        &|p, _v, r| make_policy(p, r),
        threads,
        chunk,
        |p, _v, stats| on_point(p, stats),
    )
}

/// Executes the full `(point, policy, replication)` task space of
/// `jobs × policies` on one shared worker pool — the **policy axis** of a
/// comparison study, evaluated in a single scheduler pass instead of
/// `policies` sequential sweeps.
///
/// Replication `r` of *every* policy variant of point `p` runs on the
/// streams derived from `(jobs[p].seed, r)`: common random numbers across
/// the policy axis hold **by construction**, so per-replication deltas
/// between two policies of the same point are paired samples. Because all
/// variants of a point share one configuration, a worker moving between
/// them keeps its simulator bound ([`Simulator::reset`], not
/// [`Simulator::rebind`]) — event-queue slots, SoA node columns and
/// scratch buffers are shared across the whole policy set of the point.
///
/// `make_policy(point, policy, rep)` builds one variant's policy;
/// `on_cell(point, policy, stats)` fires in lexicographic
/// `(point, policy)` order (the reorder buffer holds early finishers), so
/// a paired-delta consumer always sees a point's baseline variant first.
///
/// # Errors
/// Propagates the first error `on_cell` returns; remaining work is
/// abandoned (workers stop at their next chunk claim).
///
/// # Panics
/// Panics if `policies == 0` or if any job has `reps == 0`. A panic
/// *inside a task* does not propagate: the replication is quarantined
/// (see [`QuarantineReport`]) and the sweep completes degraded.
pub fn run_grid_policies_streaming<P, F, G>(
    jobs: &[PointJob<'_>],
    policies: usize,
    make_policy: &F,
    threads: usize,
    chunk: usize,
    on_cell: G,
) -> Result<(), String>
where
    P: Policy,
    F: Fn(usize, usize, u64) -> P + Sync,
    G: FnMut(usize, usize, PointStats) -> Result<(), String>,
{
    run_grid_policies_streaming_with_report(jobs, policies, make_policy, threads, chunk, on_cell)
        .map(|_| ())
}

/// [`run_grid_policies_streaming`] that additionally returns the pass's
/// runtime instrumentation — per-worker tasks/chunks/rebinds/events and
/// busy time plus the overall wall clock (see [`ExecReport`]). The
/// simulation results delivered to `on_cell` are identical to the plain
/// variant; the report is observational only and never digested.
///
/// # Errors
/// Propagates the first error `on_cell` returns; remaining work is
/// abandoned (workers stop at their next chunk claim).
///
/// # Panics
/// Panics if `policies == 0` or if any job has `reps == 0`. A panic
/// *inside a task* does not propagate: the replication is quarantined
/// (see [`QuarantineReport`]) and the sweep completes degraded.
pub fn run_grid_policies_streaming_with_report<P, F, G>(
    jobs: &[PointJob<'_>],
    policies: usize,
    make_policy: &F,
    threads: usize,
    chunk: usize,
    on_cell: G,
) -> Result<ExecReport, String>
where
    P: Policy,
    F: Fn(usize, usize, u64) -> P + Sync,
    G: FnMut(usize, usize, PointStats) -> Result<(), String>,
{
    let preloaded = vec![None; jobs.len() * policies.max(1)];
    run_grid_policies_resumable(
        jobs,
        policies,
        make_policy,
        threads,
        chunk,
        preloaded,
        on_cell,
    )
}

/// The resumable form of [`run_grid_policies_streaming_with_report`]:
/// `preloaded` carries one slot per `(point, policy)` cell, point-major.
/// A `Some(stats)` slot is a cell already completed by an earlier
/// (interrupted) pass — it is emitted to `on_cell` at its in-order turn
/// without running a single replication; only `None` cells are scheduled.
/// Because replication `r` of point `p` always runs on the streams
/// derived from `(jobs[p].seed, r)`, the emitted byte stream is identical
/// to an uninterrupted run no matter how the work was split between the
/// passes — this is what makes a write-ahead journal resume bit-exact.
///
/// # Errors
/// Propagates the first error `on_cell` returns; remaining work is
/// abandoned (workers stop at their next chunk claim).
///
/// # Panics
/// Panics if `policies == 0`, if any job has `reps == 0`, or if
/// `preloaded` does not hold exactly `jobs.len() * policies` slots.
/// Worker panics *inside a task* do not propagate: the task is
/// quarantined (see [`QuarantineReport`]) and the pass completes
/// degraded.
pub fn run_grid_policies_resumable<P, F, G>(
    jobs: &[PointJob<'_>],
    policies: usize,
    make_policy: &F,
    threads: usize,
    chunk: usize,
    mut preloaded: Vec<Option<PointStats>>,
    mut on_cell: G,
) -> Result<ExecReport, String>
where
    P: Policy,
    F: Fn(usize, usize, u64) -> P + Sync,
    G: FnMut(usize, usize, PointStats) -> Result<(), String>,
{
    assert!(policies > 0, "need at least one policy variant");
    assert!(
        jobs.iter().all(|j| j.reps > 0),
        "every grid point needs at least one replication"
    );
    assert_eq!(
        preloaded.len(),
        jobs.len() * policies,
        "one preloaded slot per (point, policy) cell"
    );
    if jobs.is_empty() {
        return Ok(ExecReport::default());
    }
    let wall_start = Instant::now();
    // Pending cells (no preloaded result) form the flattened task space:
    // pending cell s owns flat indices [seg_starts[s], seg_starts[s+1]) —
    // its `reps` replications. With nothing preloaded this is exactly the
    // pre-resume task order: cells point-major, `reps` consecutive tasks
    // per policy variant, so a chunk tends to stay within one
    // (point, policy) run of simulator resets.
    let pending: Vec<usize> = (0..preloaded.len())
        .filter(|&idx| preloaded[idx].is_none())
        .collect();
    let mut seg_starts = Vec::with_capacity(pending.len() + 1);
    let mut acc = 0u64;
    for &idx in &pending {
        seg_starts.push(acc);
        acc += jobs[idx / policies].reps;
    }
    seg_starts.push(acc);
    let total = acc;
    let threads = resolve_threads(threads, total);

    if threads == 1 {
        return run_grid_inline(jobs, policies, make_policy, preloaded, &mut on_cell);
    }

    let chunk = resolve_chunk(chunk, total, threads);
    // One result cell per *pending* (point, policy), in pending order.
    let cells: Vec<PointCell> = pending
        .iter()
        .map(|&idx| PointCell::new(jobs[idx / policies].reps))
        .collect();
    let cursor = AtomicU64::new(0);
    let abort = AtomicBool::new(false);
    // Rendezvous for the drain loop: workers notify under the lock after
    // publishing a cell (or on panic, via the guard below).
    let rendezvous = (Mutex::new(()), Condvar::new());
    // One instrumentation slot per worker, in spawn order; each worker
    // accumulates locally and publishes once at exit.
    let worker_reports: Vec<Mutex<WorkerReport>> = (0..threads)
        .map(|_| Mutex::new(WorkerReport::default()))
        .collect();
    let quarantines: Mutex<Vec<QuarantineReport>> = Mutex::new(Vec::new());

    let mut result = Ok(());
    std::thread::scope(|scope| {
        for report_slot in &worker_reports {
            let cells = &cells;
            let cursor = &cursor;
            let abort = &abort;
            let rendezvous = &rendezvous;
            let seg_starts = &seg_starts;
            let pending = &pending;
            let quarantines = &quarantines;
            scope.spawn(move || {
                // Wake the drain loop even if this worker unwinds, so a
                // panicking worker cannot leave the main thread waiting
                // forever — the scope join then propagates the panic.
                // (Task panics are caught and quarantined inside
                // `run_one`; this guard covers scheduler bugs.)
                let _guard = NotifyOnDrop { rendezvous, abort };
                let mut sim: Option<(usize, Simulator<'_>)> = None;
                let mut local = WorkerReport::default();
                loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let begin = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if begin >= total {
                        local.idle_claims += 1;
                        break;
                    }
                    local.chunks += 1;
                    let end = (begin + chunk).min(total);
                    for flat in begin..end {
                        // Binary-search the owning pending cell
                        // (seg_starts is sorted, one entry past the end).
                        let seg = match seg_starts.binary_search(&flat) {
                            Ok(exact) => exact,
                            Err(insert) => insert - 1,
                        };
                        let idx = pending[seg];
                        let (p, v) = (idx / policies, idx % policies);
                        let r = flat - seg_starts[seg];
                        let cell = &cells[seg];
                        match run_one(jobs, p, v, r, &mut sim, make_policy, &mut local) {
                            Ok((out, probe)) => scatter(cell, r, &out, probe),
                            Err(message) => {
                                let slot =
                                    usize::try_from(r).expect("replication index fits usize");
                                cell.quarantined[slot].store(true, Ordering::Release);
                                quarantines.lock().expect("quarantine log poisoned").push(
                                    QuarantineReport {
                                        point: p,
                                        policy: v,
                                        rep: r,
                                        message,
                                    },
                                );
                            }
                        }
                        if cell.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                            let _lock = rendezvous.0.lock().expect("rendezvous poisoned");
                            cell.done.store(true, Ordering::Release);
                            rendezvous.1.notify_all();
                        }
                    }
                }
                *report_slot.lock().expect("worker report poisoned") = local;
            });
        }

        // Drain loop: emit cells strictly in (point, policy) order —
        // preloaded cells immediately at their turn, pending cells as
        // they publish (cells that complete early sit published, the
        // reorder buffer, until their turn).
        let mut next_seg = 0usize;
        for (idx, slot) in preloaded.iter_mut().enumerate() {
            let stats = if let Some(ready) = slot.take() {
                ready
            } else {
                let cell = &cells[next_seg];
                next_seg += 1;
                let mut lock = rendezvous.0.lock().expect("rendezvous poisoned");
                while !cell.done.load(Ordering::Acquire) && !abort.load(Ordering::Relaxed) {
                    lock = rendezvous.1.wait(lock).expect("rendezvous poisoned");
                }
                if !cell.done.load(Ordering::Acquire) {
                    break; // a worker died before finishing this cell
                }
                drop(lock);
                cell.stats()
            };
            if let Err(e) = on_cell(idx / policies, idx % policies, stats) {
                abort.store(true, Ordering::Relaxed);
                result = Err(e);
                break;
            }
        }
        // An on_cell error (or early break) must stop claim processing.
        if result.is_err() {
            abort.store(true, Ordering::Relaxed);
        }
    });
    let mut quarantines = quarantines.into_inner().expect("quarantine log poisoned");
    // Workers append in claim order; present deterministically.
    quarantines.sort_by_key(|q| (q.point, q.policy, q.rep));
    let report = ExecReport {
        workers: worker_reports
            .into_iter()
            .map(|m| m.into_inner().expect("worker report poisoned"))
            .collect(),
        wall_seconds: wall_start.elapsed().as_secs_f64(),
        quarantines,
    };
    result.map(|()| report)
}

/// The single-threaded schedule: flattened task order on the calling
/// thread, emitting each `(point, policy)` cell as its last replication
/// finishes. This is both the `threads == 1` fast path (no spawn, no
/// atomics contention) and the reference the parallel path must reproduce
/// byte-for-byte.
fn run_grid_inline<P, F, G>(
    jobs: &[PointJob<'_>],
    policies: usize,
    make_policy: &F,
    mut preloaded: Vec<Option<PointStats>>,
    on_cell: &mut G,
) -> Result<ExecReport, String>
where
    P: Policy,
    F: Fn(usize, usize, u64) -> P + Sync,
    G: FnMut(usize, usize, PointStats) -> Result<(), String>,
{
    let wall_start = Instant::now();
    let mut sim: Option<(usize, Simulator<'_>)> = None;
    let mut local = WorkerReport::default();
    let mut quarantines: Vec<QuarantineReport> = Vec::new();
    let mut stats = PointStats {
        completion_times: Vec::new(),
        failures_per_rep: Vec::new(),
        tasks_shipped_per_rep: Vec::new(),
        incomplete: 0,
        total_events: 0,
        total_recoveries: 0,
        total_transfers: 0,
        total_tasks_clamped: 0,
        total_tasks_lost: 0,
        total_retries: 0,
        total_bounces: 0,
        transit_task_seconds: 0.0,
        probes: Vec::new(),
        quarantined_reps: Vec::new(),
    };
    for (p, job) in jobs.iter().enumerate() {
        for v in 0..policies {
            if let Some(ready) = preloaded[p * policies + v].take() {
                on_cell(p, v, ready)?;
                continue;
            }
            stats.completion_times.clear();
            stats.failures_per_rep.clear();
            stats.tasks_shipped_per_rep.clear();
            stats.incomplete = 0;
            stats.total_events = 0;
            stats.total_recoveries = 0;
            stats.total_transfers = 0;
            stats.total_tasks_clamped = 0;
            stats.total_tasks_lost = 0;
            stats.total_retries = 0;
            stats.total_bounces = 0;
            stats.transit_task_seconds = 0.0;
            stats.probes.clear();
            stats.quarantined_reps.clear();
            stats.completion_times.reserve(job.reps as usize);
            stats.failures_per_rep.reserve(job.reps as usize);
            stats.tasks_shipped_per_rep.reserve(job.reps as usize);
            for r in 0..job.reps {
                match run_one(jobs, p, v, r, &mut sim, make_policy, &mut local) {
                    Ok((out, probe)) => {
                        stats.completion_times.push(out.completion_time);
                        stats.failures_per_rep.push(out.failures);
                        stats.tasks_shipped_per_rep.push(out.tasks_shipped);
                        stats.incomplete += u64::from(!out.completed);
                        stats.total_events += out.events;
                        stats.total_recoveries += out.recoveries;
                        stats.total_transfers += out.transfers;
                        stats.total_tasks_clamped += out.tasks_clamped;
                        stats.total_tasks_lost += out.tasks_lost;
                        stats.total_retries += out.retries;
                        stats.total_bounces += out.bounces;
                        stats.transit_task_seconds += out.transit_task_seconds;
                        if let Some(report) = probe {
                            stats.probes.push(report);
                        }
                    }
                    Err(message) => {
                        // Placeholder zeros, bit-identical to the
                        // parallel path's untouched atomic slots.
                        stats.completion_times.push(0.0);
                        stats.failures_per_rep.push(0);
                        stats.tasks_shipped_per_rep.push(0);
                        stats.quarantined_reps.push(r);
                        quarantines.push(QuarantineReport {
                            point: p,
                            policy: v,
                            rep: r,
                            message,
                        });
                    }
                }
            }
            // Move the probe reports out instead of cloning them (the
            // counter/time vectors still reuse their warm capacity).
            let probes = std::mem::take(&mut stats.probes);
            let mut cell = stats.clone();
            cell.probes = probes;
            on_cell(p, v, cell)?;
        }
    }
    Ok(ExecReport {
        workers: vec![local],
        wall_seconds: wall_start.elapsed().as_secs_f64(),
        quarantines,
    })
}

/// Returns the worker's long-lived simulator bound to point `p` and
/// re-armed on the streams of replication `r` — creating on first use,
/// [`Simulator::reset`] within a point, [`Simulator::rebind`] across
/// points. The ONE binding protocol shared by the inline and the
/// parallel path, so the two schedules cannot drift apart.
fn bind_simulator<'s, 'a>(
    slot: &'s mut Option<(usize, Simulator<'a>)>,
    p: usize,
    job: &PointJob<'a>,
    r: u64,
    rebinds: &mut u64,
) -> &'s mut Simulator<'a> {
    let streams = job.streams_for_rep(r);
    match slot {
        Some((bound, sim)) => {
            if *bound == p {
                sim.reset(&streams);
            } else {
                sim.rebind(job.config, &streams, job.options);
                *bound = p;
                *rebinds += 1;
            }
            sim
        }
        none => {
            *none = Some((p, Simulator::new(job.config, &streams, job.options)));
            *rebinds += 1;
            &mut none.as_mut().expect("just set").1
        }
    }
}

/// Runs one `(point, policy, replication)` task on the worker's
/// long-lived simulator (creating or rebinding it as needed) inside a
/// panic boundary, and accumulates the worker's instrumentation.
///
/// Returns the run's summary and probe report, or `Err(message)` when
/// the task must be quarantined: it panicked, or the
/// [`SimOptions::task_timeout`] watchdog aborted it. After a panic the
/// simulator slot is dropped — the unwound run may have left it
/// mid-update, and the next bind builds a fresh one ([`Simulator::rebind`]
/// fully reinitializes, so no poisoned state leaks). A watchdog abort
/// leaves the slot alone: the engine returned normally and the next
/// reset/rebind re-arms it.
fn run_one<'a, P, F>(
    jobs: &[PointJob<'a>],
    p: usize,
    v: usize,
    r: u64,
    sim: &mut Option<(usize, Simulator<'a>)>,
    make_policy: &F,
    local: &mut WorkerReport,
) -> Result<(RunSummary, Option<ProbeReport>), String>
where
    P: Policy,
    F: Fn(usize, usize, u64) -> P + Sync,
{
    let job = &jobs[p];
    let task_start = Instant::now();
    // AssertUnwindSafe: on Err every touched structure is either dropped
    // (the simulator slot, reset to None below) or append-only
    // instrumentation re-written unconditionally (local counters).
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let sim = bind_simulator(sim, p, job, r, &mut local.rebinds);
        let mut policy = make_policy(p, v, r);
        let out = sim.run_summary(&mut policy);
        let probe = sim.take_probe_report();
        (out, probe)
    }));
    local.busy_seconds += task_start.elapsed().as_secs_f64();
    local.tasks += 1;
    match outcome {
        Ok((out, probe)) => {
            local.events += out.events;
            if out.aborted {
                let limit = job.options.task_timeout.unwrap_or(f64::INFINITY);
                return Err(format!(
                    "exceeded the task timeout of {limit}s \
                     (point {p}, policy {v}, rep {r})"
                ));
            }
            Ok((out, probe))
        }
        Err(payload) => {
            *sim = None;
            Err(format!("panicked: {}", panic_message(payload.as_ref())))
        }
    }
}

/// Scatters one successful replication summary into the cell's slot `r`.
fn scatter(cell: &PointCell, r: u64, out: &RunSummary, probe: Option<ProbeReport>) {
    let slot = usize::try_from(r).expect("replication index fits usize");
    cell.times[slot].store(out.completion_time.to_bits(), Ordering::Release);
    cell.failures[slot].store(out.failures, Ordering::Release);
    cell.shipped[slot].store(out.tasks_shipped, Ordering::Release);
    cell.completed[slot].store(out.completed, Ordering::Release);
    cell.transit[slot].store(out.transit_task_seconds.to_bits(), Ordering::Release);
    cell.events.fetch_add(out.events, Ordering::AcqRel);
    cell.recoveries.fetch_add(out.recoveries, Ordering::AcqRel);
    cell.transfers.fetch_add(out.transfers, Ordering::AcqRel);
    cell.clamped.fetch_add(out.tasks_clamped, Ordering::AcqRel);
    cell.lost.fetch_add(out.tasks_lost, Ordering::AcqRel);
    cell.retries.fetch_add(out.retries, Ordering::AcqRel);
    cell.bounces.fetch_add(out.bounces, Ordering::AcqRel);
    if let Some(report) = probe {
        cell.probes.lock().expect("probe slots poisoned")[slot] = Some(report);
    }
}

/// Best-effort rendering of a caught panic payload (panics carry `&str`
/// or `String` in practice; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Drop guard that wakes the drain loop; on a panicking unwind it also
/// raises the abort flag so sibling workers stop claiming chunks.
struct NotifyOnDrop<'a> {
    rendezvous: &'a (Mutex<()>, Condvar),
    abort: &'a AtomicBool,
}

impl Drop for NotifyOnDrop<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.abort.store(true, Ordering::Relaxed);
        }
        // Grab the lock so the wake cannot slip between the drain loop's
        // flag check and its wait.
        let _lock = self.rendezvous.0.lock();
        self.rendezvous.1.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NetworkConfig, NodeConfig, SystemConfig};
    use crate::policy::NoBalancing;

    fn small(tasks: [u32; 2]) -> SystemConfig {
        SystemConfig::new(
            vec![
                NodeConfig::new(1.08, 0.05, 0.1, tasks[0]),
                NodeConfig::new(1.86, 0.05, 0.05, tasks[1]),
            ],
            NetworkConfig::exponential(0.02),
        )
    }

    fn grid() -> Vec<SystemConfig> {
        vec![small([30, 5]), small([4, 4]), small([60, 1]), small([2, 9])]
    }

    fn collect(
        configs: &[SystemConfig],
        reps: &[u64],
        threads: usize,
        chunk: usize,
    ) -> Vec<(usize, PointStats)> {
        let jobs: Vec<PointJob<'_>> = configs
            .iter()
            .zip(reps)
            .map(|(config, &reps)| PointJob {
                config,
                reps,
                seed: 42,
                rep_base: 0,
                antithetic: false,
                options: SimOptions::default(),
            })
            .collect();
        let mut out = Vec::new();
        run_grid_streaming(&jobs, &|_, _| NoBalancing, threads, chunk, |p, stats| {
            out.push((p, stats));
            Ok(())
        })
        .expect("grid runs");
        out
    }

    #[test]
    fn points_arrive_in_grid_order_with_correct_shapes() {
        let configs = grid();
        let reps = [3u64, 1, 7, 2];
        let out = collect(&configs, &reps, 3, 1);
        assert_eq!(out.len(), 4);
        for (i, (p, stats)) in out.iter().enumerate() {
            assert_eq!(*p, i, "points must drain in grid order");
            assert_eq!(stats.completion_times.len(), reps[i] as usize);
            assert_eq!(stats.failures_per_rep.len(), reps[i] as usize);
            assert_eq!(stats.tasks_shipped_per_rep.len(), reps[i] as usize);
            assert!(stats.completion_times.iter().all(|&t| t > 0.0));
            assert!(stats.total_events > 0);
            assert_eq!(stats.incomplete, 0);
        }
    }

    #[test]
    fn results_are_invariant_to_threads_and_chunks() {
        let configs = grid();
        let reps = [5u64, 1, 9, 2];
        let reference = collect(&configs, &reps, 1, 0);
        for threads in [2, 3, 8] {
            for chunk in [0, 1, 2, 7, 64] {
                let got = collect(&configs, &reps, threads, chunk);
                for ((p_a, a), (p_b, b)) in reference.iter().zip(&got) {
                    assert_eq!(p_a, p_b);
                    assert_eq!(
                        a.completion_times, b.completion_times,
                        "threads={threads} chunk={chunk}"
                    );
                    assert_eq!(a.failures_per_rep, b.failures_per_rep);
                    assert_eq!(a.tasks_shipped_per_rep, b.tasks_shipped_per_rep);
                    assert_eq!(a.total_events, b.total_events);
                    assert_eq!(a.incomplete, b.incomplete);
                }
            }
        }
    }

    #[test]
    fn matches_the_single_point_runner() {
        // The scheduler on one point must reproduce mc::run_replications
        // (which itself wraps the scheduler — this pins the wrapper too).
        let config = small([40, 25]);
        let est = crate::mc::run_replications(
            &config,
            &|_| NoBalancing,
            16,
            42,
            3,
            SimOptions::default(),
        );
        let out = collect(std::slice::from_ref(&config), &[16], 4, 2);
        assert_eq!(out[0].1.completion_times, est.completion_times);
    }

    #[test]
    fn deadline_points_report_incomplete() {
        let config = small([5000, 5000]);
        let jobs = [PointJob {
            config: &config,
            reps: 4,
            seed: 7,
            rep_base: 0,
            antithetic: false,
            options: SimOptions {
                deadline: Some(0.25),
                ..SimOptions::default()
            },
        }];
        let mut incomplete = 0;
        run_grid_streaming(&jobs, &|_, _| NoBalancing, 2, 1, |_, stats| {
            incomplete = stats.incomplete;
            Ok(())
        })
        .expect("runs");
        assert_eq!(incomplete, 4);
    }

    #[test]
    fn sink_errors_abort_the_sweep() {
        let configs = grid();
        let jobs: Vec<PointJob<'_>> = configs
            .iter()
            .map(|config| PointJob {
                config,
                reps: 2,
                seed: 1,
                rep_base: 0,
                antithetic: false,
                options: SimOptions::default(),
            })
            .collect();
        for threads in [1, 4] {
            let mut seen = 0;
            let err = run_grid_streaming(&jobs, &|_, _| NoBalancing, threads, 1, |p, _| {
                seen += 1;
                if p == 1 {
                    Err("disk full".to_string())
                } else {
                    Ok(())
                }
            })
            .unwrap_err();
            assert_eq!(err, "disk full", "threads={threads}");
            assert_eq!(seen, 2, "threads={threads}: drain must stop at the error");
        }
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn zero_rep_points_are_rejected() {
        let config = small([1, 1]);
        let jobs = [PointJob {
            config: &config,
            reps: 0,
            seed: 1,
            rep_base: 0,
            antithetic: false,
            options: SimOptions::default(),
        }];
        let _ = run_grid_streaming(&jobs, &|_, _| NoBalancing, 1, 1, |_, _| Ok(()));
    }

    #[test]
    fn policy_variants_share_replication_streams() {
        // Two variants of the *same* policy must sample identical
        // trajectories — the common-random-numbers invariant of the
        // policy axis, bit for bit.
        let configs = grid();
        let jobs: Vec<PointJob<'_>> = configs
            .iter()
            .map(|config| PointJob {
                config,
                reps: 5,
                seed: 42,
                rep_base: 0,
                antithetic: false,
                options: SimOptions::default(),
            })
            .collect();
        for threads in [1, 4] {
            let mut cells: Vec<(usize, usize, PointStats)> = Vec::new();
            run_grid_policies_streaming(
                &jobs,
                2,
                &|_, _, _| NoBalancing,
                threads,
                1,
                |p, v, stats| {
                    cells.push((p, v, stats));
                    Ok(())
                },
            )
            .expect("runs");
            assert_eq!(cells.len(), 2 * jobs.len(), "threads={threads}");
            for (point, pair) in cells.chunks(2).enumerate() {
                let (p0, v0, a) = &pair[0];
                let (p1, v1, b) = &pair[1];
                assert_eq!((*p0, *v0), (point, 0), "cell order");
                assert_eq!((*p1, *v1), (point, 1), "cell order");
                assert_eq!(a.completion_times, b.completion_times);
                assert_eq!(a.failures_per_rep, b.failures_per_rep);
                assert_eq!(a.total_events, b.total_events);
            }
        }
    }

    #[test]
    fn policy_variants_match_independent_single_policy_passes() {
        // A variant pass over K distinct policies must reproduce, bit for
        // bit, K independent single-policy passes with the same seeds —
        // the compare ≡ K sweeps contract.
        use churnbal_core_free::gains;
        let configs = grid();
        let jobs: Vec<PointJob<'_>> = configs
            .iter()
            .enumerate()
            .map(|(k, config)| PointJob {
                config,
                reps: 3 + (k as u64 % 3),
                seed: 7,
                rep_base: 0,
                antithetic: false,
                options: SimOptions::default(),
            })
            .collect();
        let k_policies = gains().len();
        let mut combined: Vec<(usize, usize, Vec<f64>)> = Vec::new();
        run_grid_policies_streaming(
            &jobs,
            k_policies,
            &|_, v, _| gains()[v].clone(),
            3,
            2,
            |p, v, stats| {
                combined.push((p, v, stats.completion_times));
                Ok(())
            },
        )
        .expect("variant pass runs");
        for (v, policy) in gains().into_iter().enumerate() {
            let mut single: Vec<(usize, Vec<f64>)> = Vec::new();
            run_grid_streaming(&jobs, &|_, _| policy.clone(), 1, 0, |p, stats| {
                single.push((p, stats.completion_times));
                Ok(())
            })
            .expect("single pass runs");
            for (p, times) in single {
                let cell = combined
                    .iter()
                    .find(|&&(cp, cv, _)| cp == p && cv == v)
                    .expect("cell present");
                assert_eq!(cell.2, times, "point {p} policy {v} diverged");
            }
        }
    }

    /// Tiny local stand-in for distinct policies without a `core` dep:
    /// transfer-free policies that differ only in name (the trajectories
    /// still differ through NoBalancing vs a one-shot shipper below).
    mod churnbal_core_free {
        use crate::policy::{Policy, SystemView, TransferOrder};

        /// Ships `tasks` from node 0 to node 1 at t = 0 — enough to make
        /// two "policies" sample genuinely different trajectories.
        #[derive(Clone)]
        pub struct ShipAtStart(pub u32);

        impl Policy for ShipAtStart {
            fn name(&self) -> &str {
                "ship-at-start"
            }
            fn on_start(&mut self, view: &SystemView<'_>, orders: &mut Vec<TransferOrder>) {
                let l = self.0.min(view.queue_len[0]);
                if l > 0 {
                    orders.push(TransferOrder {
                        from: 0,
                        to: 1,
                        tasks: l,
                    });
                }
            }
        }

        /// Three distinct variants: do nothing, ship 2, ship 5.
        pub fn gains() -> Vec<ShipAtStart> {
            vec![ShipAtStart(0), ShipAtStart(2), ShipAtStart(5)]
        }
    }

    #[test]
    fn variant_cells_drain_in_point_major_order_across_threads() {
        let configs = grid();
        let jobs: Vec<PointJob<'_>> = configs
            .iter()
            .map(|config| PointJob {
                config,
                reps: 2,
                seed: 3,
                rep_base: 0,
                antithetic: false,
                options: SimOptions::default(),
            })
            .collect();
        for threads in [1, 3, 8] {
            let mut order = Vec::new();
            run_grid_policies_streaming(&jobs, 3, &|_, _, _| NoBalancing, threads, 1, |p, v, _| {
                order.push((p, v));
                Ok(())
            })
            .expect("runs");
            let expected: Vec<(usize, usize)> = (0..jobs.len())
                .flat_map(|p| (0..3).map(move |v| (p, v)))
                .collect();
            assert_eq!(order, expected, "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one policy")]
    fn zero_policies_are_rejected() {
        let config = small([1, 1]);
        let jobs = [PointJob {
            config: &config,
            reps: 1,
            seed: 1,
            rep_base: 0,
            antithetic: false,
            options: SimOptions::default(),
        }];
        let _ =
            run_grid_policies_streaming(&jobs, 0, &|_, _, _| NoBalancing, 1, 1, |_, _, _| Ok(()));
    }

    #[test]
    fn empty_grid_is_a_no_op() {
        let called =
            run_grid_streaming::<NoBalancing, _, _>(&[], &|_, _| NoBalancing, 4, 0, |_, _| {
                Err("must not be called".into())
            });
        assert_eq!(called, Ok(()));
    }

    #[test]
    fn telemetry_counters_are_schedule_invariant() {
        // The new PointStats counters (recoveries/transfers/clamped and
        // the float transit sum) must match the inline reference for any
        // thread/chunk placement, like the per-rep vectors.
        let configs = grid();
        let reps = [5u64, 3, 9, 2];
        let reference = collect(&configs, &reps, 1, 0);
        assert!(
            reference.iter().any(|(_, s)| s.total_recoveries > 0),
            "churny grid must recover somewhere"
        );
        for threads in [2, 4] {
            for chunk in [0, 1, 3] {
                let got = collect(&configs, &reps, threads, chunk);
                for ((_, a), (_, b)) in reference.iter().zip(&got) {
                    assert_eq!(a.total_recoveries, b.total_recoveries);
                    assert_eq!(a.total_transfers, b.total_transfers);
                    assert_eq!(a.total_tasks_clamped, b.total_tasks_clamped);
                    assert_eq!(
                        a.transit_task_seconds.to_bits(),
                        b.transit_task_seconds.to_bits(),
                        "threads={threads} chunk={chunk}: float sum must be bit-stable"
                    );
                    assert!(a.probes.is_empty() && b.probes.is_empty());
                }
            }
        }
    }

    #[test]
    fn probe_reports_flow_slot_stable_through_the_scheduler() {
        let configs = grid();
        let options = SimOptions {
            probe_dt: Some(0.5),
            ..SimOptions::default()
        };
        let jobs: Vec<PointJob<'_>> = configs
            .iter()
            .map(|config| PointJob {
                config,
                reps: 4,
                seed: 42,
                rep_base: 0,
                antithetic: false,
                options,
            })
            .collect();
        let gather = |threads: usize| {
            let mut out = Vec::new();
            run_grid_streaming(&jobs, &|_, _| NoBalancing, threads, 1, |p, stats| {
                out.push((p, stats));
                Ok(())
            })
            .expect("grid runs");
            out
        };
        let reference = gather(1);
        for (p, stats) in &reference {
            assert_eq!(stats.probes.len(), 4, "point {p}: one report per rep");
            assert!(stats.probes.iter().any(|r| !r.samples.is_empty()));
        }
        let parallel = gather(4);
        for ((_, a), (_, b)) in reference.iter().zip(&parallel) {
            assert_eq!(
                a.probes, b.probes,
                "probe telemetry must be thread-invariant"
            );
        }
    }

    #[test]
    fn exec_report_accounts_for_every_task() {
        let configs = grid();
        let jobs: Vec<PointJob<'_>> = configs
            .iter()
            .map(|config| PointJob {
                config,
                reps: 3,
                seed: 9,
                rep_base: 0,
                antithetic: false,
                options: SimOptions::default(),
            })
            .collect();
        for threads in [1, 4] {
            let mut events = 0u64;
            let report = run_grid_policies_streaming_with_report(
                &jobs,
                2,
                &|_, _, _| NoBalancing,
                threads,
                1,
                |_, _, stats| {
                    events += stats.total_events;
                    Ok(())
                },
            )
            .expect("grid runs");
            let totals = report.totals();
            assert_eq!(totals.tasks, 2 * 3 * jobs.len() as u64, "threads={threads}");
            assert_eq!(totals.events, events, "threads={threads}");
            assert!(
                totals.rebinds >= jobs.len() as u64 - 1,
                "every point transition rebinds"
            );
            assert!(report.wall_seconds > 0.0);
            assert!(totals.busy_seconds > 0.0);
            if threads == 1 {
                assert_eq!(report.workers.len(), 1);
                assert_eq!(totals.chunks, 0, "inline claims nothing");
            } else {
                assert_eq!(report.workers.len(), threads);
                assert!(totals.chunks > 0);
                assert!(totals.idle_claims >= 1);
            }
        }
    }

    /// Panics at `t = 0` of the armed replication, otherwise does
    /// nothing — the panic-injection fixture.
    struct PanicOn {
        armed: bool,
    }

    impl Policy for PanicOn {
        fn name(&self) -> &str {
            "panic-on"
        }
        fn on_start(
            &mut self,
            _view: &crate::policy::SystemView<'_>,
            _orders: &mut Vec<crate::policy::TransferOrder>,
        ) {
            assert!(!self.armed, "injected panic");
        }
    }

    #[test]
    fn panicking_reps_are_quarantined_and_every_other_cell_emits() {
        let configs = grid();
        let jobs: Vec<PointJob<'_>> = configs
            .iter()
            .map(|config| PointJob {
                config,
                reps: 3,
                seed: 42,
                rep_base: 0,
                antithetic: false,
                options: SimOptions::default(),
            })
            .collect();
        let reference = collect(&configs, &[3, 3, 3, 3], 1, 0);
        for threads in [1, 4] {
            let mut cells: Vec<(usize, PointStats)> = Vec::new();
            let report = run_grid_policies_streaming_with_report(
                &jobs,
                1,
                &|p, _v, r| PanicOn {
                    armed: p == 1 && r == 1,
                },
                threads,
                1,
                |p, _v, stats| {
                    cells.push((p, stats));
                    Ok(())
                },
            )
            .expect("degraded sweep still completes");
            assert_eq!(
                cells.len(),
                jobs.len(),
                "threads={threads}: every cell emits"
            );
            assert_eq!(report.quarantines.len(), 1, "threads={threads}");
            let q = &report.quarantines[0];
            assert_eq!((q.point, q.policy, q.rep), (1, 0, 1));
            assert!(q.message.contains("injected panic"), "{}", q.message);
            for (i, (p, stats)) in cells.iter().enumerate() {
                assert_eq!(*p, i);
                if i == 1 {
                    assert_eq!(stats.quarantined_reps, vec![1]);
                    assert_eq!(stats.completion_times[1], 0.0, "placeholder slot");
                    assert_eq!(stats.incomplete, 0, "lost, not deadline-incomplete");
                    // Surviving slots match the clean reference.
                    assert_eq!(
                        stats.completion_times[0],
                        reference[1].1.completion_times[0]
                    );
                    assert_eq!(
                        stats.completion_times[2],
                        reference[1].1.completion_times[2]
                    );
                } else {
                    assert_eq!(stats.completion_times, reference[i].1.completion_times);
                    assert!(stats.quarantined_reps.is_empty());
                }
            }
        }
    }

    #[test]
    fn preloaded_cells_are_emitted_in_order_without_rerunning() {
        let configs = grid();
        let jobs: Vec<PointJob<'_>> = configs
            .iter()
            .map(|config| PointJob {
                config,
                reps: 4,
                seed: 42,
                rep_base: 0,
                antithetic: false,
                options: SimOptions::default(),
            })
            .collect();
        let reference = collect(&configs, &[4, 4, 4, 4], 1, 0);
        for threads in [1, 4] {
            // Cells 0 and 2 come preloaded; 1 and 3 must run live.
            let preloaded: Vec<Option<PointStats>> = (0..jobs.len())
                .map(|i| (i % 2 == 0).then(|| reference[i].1.clone()))
                .collect();
            let mut cells: Vec<(usize, PointStats)> = Vec::new();
            let report = run_grid_policies_resumable(
                &jobs,
                1,
                &|_, _, _| NoBalancing,
                threads,
                1,
                preloaded,
                |p, _v, stats| {
                    cells.push((p, stats));
                    Ok(())
                },
            )
            .expect("resumed pass runs");
            assert_eq!(
                report.totals().tasks,
                2 * 4,
                "threads={threads}: only pending cells run"
            );
            assert_eq!(cells.len(), jobs.len());
            for (i, (p, stats)) in cells.iter().enumerate() {
                assert_eq!(*p, i, "threads={threads}: strict cell order");
                assert_eq!(
                    stats.completion_times, reference[i].1.completion_times,
                    "threads={threads}: resumed bytes match the clean run"
                );
            }
        }
        // Everything preloaded: a pure replay, zero tasks executed.
        let preloaded: Vec<Option<PointStats>> =
            reference.iter().map(|(_, s)| Some(s.clone())).collect();
        let mut seen = 0;
        let report = run_grid_policies_resumable(
            &jobs,
            1,
            &|_, _, _| NoBalancing,
            4,
            0,
            preloaded,
            |_, _, _| {
                seen += 1;
                Ok(())
            },
        )
        .expect("pure replay runs");
        assert_eq!(seen, jobs.len());
        assert_eq!(report.totals().tasks, 0);
    }

    #[test]
    fn zero_task_timeout_quarantines_every_replication() {
        let config = small([40, 25]);
        let jobs = [PointJob {
            config: &config,
            reps: 2,
            seed: 7,
            rep_base: 0,
            antithetic: false,
            options: SimOptions {
                task_timeout: Some(0.0),
                ..SimOptions::default()
            },
        }];
        let mut got: Vec<PointStats> = Vec::new();
        let report = run_grid_policies_streaming_with_report(
            &jobs,
            1,
            &|_, _, _| NoBalancing,
            1,
            1,
            |_, _, stats| {
                got.push(stats);
                Ok(())
            },
        )
        .expect("degraded sweep still completes");
        assert_eq!(report.quarantines.len(), 2);
        assert!(report.quarantines[0].message.contains("task timeout"));
        assert_eq!(got[0].quarantined_reps, vec![0, 1]);
        assert_eq!(got[0].incomplete, 0);
    }

    #[test]
    fn generous_task_timeout_leaves_results_bit_identical() {
        let config = small([40, 25]);
        let run = |timeout: Option<f64>| {
            let jobs = [PointJob {
                config: &config,
                reps: 6,
                seed: 11,
                rep_base: 0,
                antithetic: false,
                options: SimOptions {
                    task_timeout: timeout,
                    ..SimOptions::default()
                },
            }];
            let mut out = Vec::new();
            run_grid_streaming(&jobs, &|_, _| NoBalancing, 2, 1, |_, stats| {
                out.push(stats);
                Ok(())
            })
            .expect("runs");
            out
        };
        let plain = run(None);
        let watched = run(Some(3600.0));
        assert_eq!(plain[0].completion_times, watched[0].completion_times);
        assert_eq!(plain[0].total_events, watched[0].total_events);
        assert!(watched[0].quarantined_reps.is_empty());
    }
}
