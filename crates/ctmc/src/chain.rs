//! Sparse CTMC representation.

/// Index of a state in a [`Chain`] (row of the transition structure).
pub type StateIndex = usize;

/// Sentinel target meaning "the absorbing completion state".
///
/// The chains built in this suite model a workload that finishes; absorption
/// collects all transitions into "every task done".
pub const ABSORBING: StateIndex = usize::MAX;

/// A finite CTMC in compressed sparse row form.
///
/// Row `i` stores the outgoing transitions of state `i` as parallel slices
/// of targets and rates. The absorbing state is implicit (targets equal to
/// [`ABSORBING`]); it has no row.
#[derive(Clone, Debug)]
pub struct Chain {
    row_ptr: Vec<usize>,
    targets: Vec<StateIndex>,
    rates: Vec<f64>,
    exit_rates: Vec<f64>,
}

impl Chain {
    /// Assembles a chain from per-state transition lists.
    ///
    /// # Panics
    /// Panics if any rate is non-positive/non-finite or any target index is
    /// out of bounds (and not [`ABSORBING`]).
    #[must_use]
    pub fn from_rows(rows: Vec<Vec<(StateIndex, f64)>>) -> Self {
        let n = rows.len();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut targets = Vec::new();
        let mut rates = Vec::new();
        let mut exit_rates = Vec::with_capacity(n);
        row_ptr.push(0);
        for (i, row) in rows.into_iter().enumerate() {
            let mut exit = 0.0;
            for (target, rate) in row {
                assert!(
                    rate.is_finite() && rate > 0.0,
                    "state {i}: transition rate must be positive, got {rate}"
                );
                assert!(
                    target == ABSORBING || target < n,
                    "state {i}: target {target} out of bounds (n = {n})"
                );
                targets.push(target);
                rates.push(rate);
                exit += rate;
            }
            exit_rates.push(exit);
            row_ptr.push(targets.len());
        }
        Self {
            row_ptr,
            targets,
            rates,
            exit_rates,
        }
    }

    /// Number of transient (non-absorbing) states.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.exit_rates.len()
    }

    /// Number of stored transitions.
    #[must_use]
    pub fn num_transitions(&self) -> usize {
        self.rates.len()
    }

    /// Total exit rate `Λ_i` of state `i`.
    #[must_use]
    pub fn exit_rate(&self, i: StateIndex) -> f64 {
        self.exit_rates[i]
    }

    /// Largest exit rate over all states (the uniformization constant).
    #[must_use]
    pub fn max_exit_rate(&self) -> f64 {
        self.exit_rates.iter().copied().fold(0.0, f64::max)
    }

    /// Outgoing transitions of state `i` as `(target, rate)` pairs.
    pub fn transitions(&self, i: StateIndex) -> impl Iterator<Item = (StateIndex, f64)> + '_ {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.targets[lo..hi]
            .iter()
            .copied()
            .zip(self.rates[lo..hi].iter().copied())
    }

    /// Returns `true` if every state has a path to absorption.
    ///
    /// Computed by reverse reachability from the absorbing state. Chains
    /// used for expected-time analysis must satisfy this, otherwise the
    /// expectation is infinite.
    #[must_use]
    pub fn absorption_is_reachable_from_all(&self) -> bool {
        let n = self.num_states();
        // Build reverse adjacency.
        let mut rev: Vec<Vec<StateIndex>> = vec![Vec::new(); n];
        let mut frontier: Vec<StateIndex> = Vec::new();
        let mut reached = vec![false; n];
        for (i, r) in reached.iter_mut().enumerate() {
            for (t, _) in self.transitions(i) {
                if t == ABSORBING {
                    if !*r {
                        *r = true;
                        frontier.push(i);
                    }
                } else {
                    rev[t].push(i);
                }
            }
        }
        while let Some(x) = frontier.pop() {
            for &p in &rev[x] {
                if !reached[p] {
                    reached[p] = true;
                    frontier.push(p);
                }
            }
        }
        reached.iter().all(|&r| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state() -> Chain {
        // 0 --1.0--> 1 --2.0--> absorbed, 1 --0.5--> 0
        Chain::from_rows(vec![vec![(1, 1.0)], vec![(ABSORBING, 2.0), (0, 0.5)]])
    }

    #[test]
    fn structure_accessors() {
        let c = two_state();
        assert_eq!(c.num_states(), 2);
        assert_eq!(c.num_transitions(), 3);
        assert!((c.exit_rate(0) - 1.0).abs() < 1e-12);
        assert!((c.exit_rate(1) - 2.5).abs() < 1e-12);
        assert!((c.max_exit_rate() - 2.5).abs() < 1e-12);
        let t0: Vec<_> = c.transitions(0).collect();
        assert_eq!(t0, vec![(1, 1.0)]);
    }

    #[test]
    fn absorption_reachability_positive() {
        assert!(two_state().absorption_is_reachable_from_all());
    }

    #[test]
    fn absorption_reachability_negative() {
        // 0 and 1 cycle forever; 2 absorbs but is unreachable backwards.
        let c = Chain::from_rows(vec![vec![(1, 1.0)], vec![(0, 1.0)], vec![(ABSORBING, 1.0)]]);
        assert!(!c.absorption_is_reachable_from_all());
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn rejects_zero_rate() {
        let _ = Chain::from_rows(vec![vec![(ABSORBING, 0.0)]]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_bad_target() {
        let _ = Chain::from_rows(vec![vec![(5, 1.0)]]);
    }

    #[test]
    fn state_with_no_transitions_is_allowed_at_construction() {
        // (Absorption analysis will reject it, construction shouldn't.)
        let c = Chain::from_rows(vec![vec![]]);
        assert_eq!(c.exit_rate(0), 0.0);
        assert!(!c.absorption_is_reachable_from_all());
    }
}
