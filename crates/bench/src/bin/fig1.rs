//! Figure 1: empirical pdfs of the per-task processing time for node 1
//! (Crusoe, 1.08 task/s) and node 2 (P4, 1.86 task/s), with their
//! exponential fits.
//!
//! The test-bed stand-in generates per-task processing times from the
//! application-layer model (§3: randomly sized matrix-row tasks); this
//! binary estimates the pdf with a histogram and fits an exponential by
//! maximum likelihood, reproducing the calibration step of §4.

use churnbal_bench::table::{f2, TextTable};
use churnbal_bench::Args;
use churnbal_cluster::testbed::sample_processing_times;
use churnbal_stochastic::{fit, Exponential, Histogram, Xoshiro256pp};

fn main() {
    let args = Args::parse();
    let n = args.reps_or(5000) as usize;
    let mut rng = Xoshiro256pp::seed_from_u64(args.seed);

    // (node label, rate, histogram range) — the paper plots node 1 on
    // [0, 12] s and node 2 on [0, 5] s.
    let panels = [("node 1 (Crusoe)", 1.08, 12.0), ("node 2 (P4)", 1.86, 5.0)];

    println!("Figure 1 — empirical pdf of the processing time per task ({n} samples/node)\n");
    for (label, rate, hi) in panels {
        let xs = sample_processing_times(rate, n, &mut rng);
        let fitted = fit::exp_rate_mle(&xs);
        let fit_pdf = Exponential::new(fitted);
        let mut h = Histogram::new(0.0, hi, 24);
        h.add_all(&xs);
        println!("{label}: true rate {rate} task/s, fitted rate {fitted:.3} task/s");
        let mut t = TextTable::new(["w (s)", "empirical pdf", "exponential fit"]);
        for (x, d) in h.density_series() {
            t.row([format!("{x:.3}"), f2(d), f2(fit_pdf.pdf(x))]);
        }
        t.print();
        let rel = (fitted - rate).abs() / rate;
        println!("relative rate error: {:.2}%\n", rel * 100.0);
        assert!(rel < 0.1, "fitted rate strays from the configured one");
    }
    println!("shape check OK: both pdfs are exponential with the paper's rates");
}
