//! Model-backed theory columns: the Eq. 4 regenerative mean joined next
//! to Monte-Carlo estimates.
//!
//! The paper's Eq. 4 gives the *exact* mean overall completion time of
//! the two-node closed system under a one-shot LBP-1 transfer (including
//! the no-transfer baseline). Where a grid point falls inside that model's
//! domain — exactly two nodes, a closed workload (no external or
//! stochastic arrivals), independent per-node churn — sweeps and
//! comparisons can print the theory mean and the Monte-Carlo discrepancy
//! right next to the sampled estimate, turning every such row into a
//! model-validation check.
//!
//! Out-of-domain points (multi-node, open systems, correlated churn,
//! policies whose dynamics Eq. 4 does not describe) simply yield no value;
//! renderers emit an empty cell.

use churnbal_cluster::SystemConfig;
use churnbal_core::{model_params, PolicySpec};
use churnbal_model::optimize::optimize_transfer;
use churnbal_model::{Lbp1Evaluator, TwoNodeParams, WorkState};

use crate::scenario::Scenario;
use churnbal_cluster::ChurnModel;

/// Whether a scenario point lies in the Eq. 4 model's domain: a two-node,
/// closed (no arrivals of any kind), independently churning system with
/// **no deadline** — a deadline censors the Monte-Carlo completion time,
/// which would make `mc − theory` a systematic artefact rather than a
/// sampling gap. The policy is judged separately per query — see
/// [`TheoryCache::eq4_mean`].
#[must_use]
pub fn in_model_domain(scenario: &Scenario, config: &SystemConfig) -> bool {
    config.num_nodes() == 2
        && config.external_arrivals.is_empty()
        && config.arrival_process.is_none()
        && scenario.deadline.is_none()
        && matches!(scenario.churn, ChurnModel::Independent)
}

/// One memoised system: the Eq. 4 lattice plus the lazily computed
/// optimum over all `(sender, L)` transfers.
struct CachedSystem {
    params: TwoNodeParams,
    m0: [u32; 2],
    evaluator: Lbp1Evaluator,
    optimal_mean: Option<f64>,
}

/// Memoised [`Lbp1Evaluator`] keyed on `(params, workload)`.
///
/// A sweep revisits the same lattice for every gain value (Fig. 3 is 21
/// queries against one workload) and a comparison for every policy of a
/// point; building the Eq. 4 lattice once per distinct system — and
/// solving the `lbp1-optimal` search on it at most once — makes the
/// theory join O(1) for all of them.
#[derive(Default)]
pub struct TheoryCache {
    entry: Option<CachedSystem>,
}

impl TheoryCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn system(&mut self, params: TwoNodeParams, m0: [u32; 2]) -> &mut CachedSystem {
        let hit = matches!(&self.entry, Some(e) if e.params == params && e.m0 == m0);
        if !hit {
            self.entry = Some(CachedSystem {
                params,
                m0,
                evaluator: Lbp1Evaluator::new(&params, m0),
                optimal_mean: None,
            });
        }
        self.entry.as_mut().expect("just filled")
    }

    fn evaluator(&mut self, params: TwoNodeParams, m0: [u32; 2]) -> &Lbp1Evaluator {
        &self.system(params, m0).evaluator
    }

    /// The Eq. 4 mean completion time for `policy` on the point described
    /// by `(scenario, config)`, starting from both nodes up — or `None`
    /// when the point or the policy is outside the model's domain.
    ///
    /// Covered policies:
    ///
    /// * `no-balancing` — Eq. 4 with a zero transfer;
    /// * `lbp1` — the transfer `L = round(K · m_sender)` of Eq. 1;
    /// * `lbp1-optimal` — the minimum of Eq. 4 over `(sender, L)`;
    /// * `initial-only` — LBP-2's one-shot initial balancing with no
    ///   failure compensation, which on two nodes is exactly an LBP-1
    ///   transfer from the Eq. 6–7 excess partition.
    ///
    /// LBP-2 variants with failure-triggered transfers are *not* Eq. 4
    /// dynamics (the paper itself only has Monte-Carlo and experiment for
    /// them), so they report `None`.
    pub fn eq4_mean(
        &mut self,
        scenario: &Scenario,
        config: &SystemConfig,
        policy: &PolicySpec,
    ) -> Option<f64> {
        if !in_model_domain(scenario, config) {
            return None;
        }
        let m0 = [config.nodes[0].initial_tasks, config.nodes[1].initial_tasks];
        if m0[0] + m0[1] == 0 {
            return Some(0.0);
        }
        let params = model_params(config);
        match policy {
            PolicySpec::NoBalancing => {
                Some(self.evaluator(params, m0).mean(0, 0, WorkState::BOTH_UP))
            }
            PolicySpec::Lbp1 { sender, gain, .. } => Some(
                self.evaluator(params, m0)
                    .mean_for_gain(*sender, *gain, WorkState::BOTH_UP),
            ),
            PolicySpec::Lbp1Optimal => {
                // Minimum of Eq. 4 over (sender, L), searched on the
                // cached lattice and itself memoised per system.
                let system = self.system(params, m0);
                if system.optimal_mean.is_none() {
                    let best = (0..2)
                        .map(|s| optimize_transfer(&system.evaluator, s, WorkState::BOTH_UP).1)
                        .fold(f64::INFINITY, f64::min);
                    system.optimal_mean = Some(best);
                }
                system.optimal_mean
            }
            PolicySpec::InitialBalanceOnly { gain } => {
                let (sender, l) = initial_balance_transfer(config, m0, *gain);
                Some(
                    self.evaluator(params, m0)
                        .mean(sender, l, WorkState::BOTH_UP),
                )
            }
            _ => None,
        }
    }
}

/// The one-shot transfer `initial-only` performs on a two-node system:
/// the Eq. 6–7 excess partition scaled by the gain, exactly the order
/// `churnbal_core::InitialBalanceOnly` cuts at `t = 0`.
fn initial_balance_transfer(config: &SystemConfig, m0: [u32; 2], gain: f64) -> (usize, u32) {
    let mut orders = Vec::new();
    churnbal_core::excess::balancing_orders_into(
        2,
        |i| config.nodes[i].initial_tasks,
        |i| config.nodes[i].service_rate,
        gain,
        &mut orders,
    );
    match orders.first() {
        Some(o) => (o.from, o.tasks.min(m0[o.from])),
        None => (0, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;
    use crate::sweep::{apply_axis, AxisParam};

    #[test]
    fn fig3_theory_matches_the_direct_evaluator() {
        let sc = registry::get("paper-fig3").expect("preset");
        let mut cache = TheoryCache::new();
        let params = TwoNodeParams::paper();
        let ev = Lbp1Evaluator::new(&params, [100, 60]);
        for k in [0.0, 0.35, 1.0] {
            let point = apply_axis(&sc, AxisParam::Gain, k).expect("applies");
            let config = point.system_config().expect("valid");
            let theory = cache
                .eq4_mean(&point, &config, &point.policy)
                .expect("in domain");
            let direct = ev.mean_for_gain(0, k, WorkState::BOTH_UP);
            assert_eq!(theory, direct, "K = {k}");
        }
    }

    #[test]
    fn no_balancing_and_optimal_are_covered() {
        let mut sc = registry::get("paper-fig3").expect("preset");
        sc.axes.clear();
        let config = sc.system_config().expect("valid");
        let mut cache = TheoryCache::new();
        let none = cache
            .eq4_mean(&sc, &config, &churnbal_core::PolicySpec::NoBalancing)
            .expect("no-balancing is Eq. 4 with L = 0");
        let opt = cache
            .eq4_mean(&sc, &config, &churnbal_core::PolicySpec::Lbp1Optimal)
            .expect("the optimum is an Eq. 4 minimum");
        assert!(opt < none, "balancing must beat doing nothing");
        // LBP-2's failure-compensated dynamics are not Eq. 4.
        assert!(cache
            .eq4_mean(&sc, &config, &churnbal_core::PolicySpec::Lbp2 { gain: 1.0 })
            .is_none());
    }

    #[test]
    fn optimal_theory_matches_the_full_optimizer_and_is_memoised() {
        let mut sc = registry::get("paper-fig3").expect("preset");
        sc.axes.clear();
        let config = sc.system_config().expect("valid");
        let mut cache = TheoryCache::new();
        let via_cache = cache
            .eq4_mean(&sc, &config, &churnbal_core::PolicySpec::Lbp1Optimal)
            .expect("in domain");
        let direct =
            churnbal_model::optimize_lbp1(&TwoNodeParams::paper(), [100, 60], WorkState::BOTH_UP)
                .mean;
        assert_eq!(via_cache, direct);
        // Second query hits the memoised optimum (same value back).
        assert_eq!(
            cache.eq4_mean(&sc, &config, &churnbal_core::PolicySpec::Lbp1Optimal),
            Some(direct)
        );
    }

    #[test]
    fn deadline_scenarios_are_out_of_domain() {
        // A deadline censors the Monte-Carlo completion time; comparing
        // that against the untruncated Eq. 4 mean would be misleading.
        let mut sc = registry::get("paper-fig3").expect("preset");
        sc.axes.clear();
        sc.deadline = Some(50.0);
        let config = sc.system_config().expect("valid");
        let mut cache = TheoryCache::new();
        assert!(cache.eq4_mean(&sc, &config, &sc.policy).is_none());
    }

    #[test]
    fn open_and_multinode_points_are_out_of_domain() {
        let mut cache = TheoryCache::new();
        for name in ["open-system", "volunteer-grid", "correlated-failures"] {
            let mut sc = registry::get(name).expect("preset");
            sc.axes.clear();
            let config = sc.system_config().expect("valid");
            assert!(
                cache.eq4_mean(&sc, &config, &sc.policy).is_none(),
                "{name} must be outside the Eq. 4 domain"
            );
        }
    }

    #[test]
    fn cache_reuses_the_lattice_across_gains() {
        let mut sc = registry::get("paper-fig3").expect("preset");
        sc.axes.clear();
        let config = sc.system_config().expect("valid");
        let mut cache = TheoryCache::new();
        let a = cache.eq4_mean(
            &sc,
            &config,
            &churnbal_core::PolicySpec::Lbp1 {
                sender: 0,
                receiver: 1,
                gain: 0.2,
            },
        );
        let b = cache.eq4_mean(
            &sc,
            &config,
            &churnbal_core::PolicySpec::Lbp1 {
                sender: 0,
                receiver: 1,
                gain: 0.8,
            },
        );
        assert!(a.is_some() && b.is_some() && a != b);
    }
}
