//! Optimal LBP-1 gain and sender/receiver selection.
//!
//! The paper chooses the gain `K` (equivalently the integer transfer size
//! `L = K·m_sender`, Eq. 1), the sender and the receiver to minimise the
//! mean overall completion time computed from the regenerative model. We
//! search over the integer `L` directly — the objective is only defined at
//! integer task counts — with a coarse grid followed by an exhaustive local
//! refinement, which is robust even where the objective is not perfectly
//! unimodal.

use crate::mean::Lbp1Evaluator;
use crate::rates::TwoNodeParams;
use crate::state::WorkState;

/// Result of the LBP-1 optimisation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Lbp1Optimum {
    /// Sending node (0-based; `usize::MAX`-free: a no-transfer optimum
    /// reports sender 0 with `tasks = 0`).
    pub sender: usize,
    /// Receiving node.
    pub receiver: usize,
    /// Optimal number of tasks to ship at `t = 0`.
    pub tasks: u32,
    /// The corresponding gain `K = tasks / m_sender` (0 when the sender
    /// queue is empty).
    pub gain: f64,
    /// Minimised mean overall completion time (seconds).
    pub mean: f64,
}

/// Minimises the mean completion time over `L ∈ {0..=m_sender}` for a fixed
/// sender, returning `(L*, mean*)`.
#[must_use]
pub fn optimize_transfer(ev: &Lbp1Evaluator, sender: usize, initial: WorkState) -> (u32, f64) {
    let m_max = ev.workload()[sender];
    let eval = |l: u32| ev.mean(sender, l, initial);
    if m_max == 0 {
        return (0, eval(0));
    }
    // Coarse pass.
    let step = (m_max / 24).max(1);
    let mut best_l = 0u32;
    let mut best = f64::INFINITY;
    let mut l = 0u32;
    loop {
        let v = eval(l);
        if v < best {
            best = v;
            best_l = l;
        }
        if l == m_max {
            break;
        }
        l = (l + step).min(m_max);
    }
    // Exhaustive refinement around the coarse minimum.
    let lo = best_l.saturating_sub(step);
    let hi = (best_l + step).min(m_max);
    for l in lo..=hi {
        let v = eval(l);
        if v < best {
            best = v;
            best_l = l;
        }
    }
    (best_l, best)
}

/// Full LBP-1 optimisation: both orientations, all transfer sizes.
///
/// Returns the sender/receiver pair and gain minimising the model's mean
/// completion time from work state `initial` (the paper uses `(1,1)`).
#[must_use]
pub fn optimize_lbp1(params: &TwoNodeParams, m0: [u32; 2], initial: WorkState) -> Lbp1Optimum {
    let ev = Lbp1Evaluator::new(params, m0);
    let mut best: Option<Lbp1Optimum> = None;
    for (sender, &m_sender) in m0.iter().enumerate() {
        let (tasks, mean) = optimize_transfer(&ev, sender, initial);
        let gain = if m_sender == 0 {
            0.0
        } else {
            f64::from(tasks) / f64::from(m_sender)
        };
        let candidate = Lbp1Optimum {
            sender,
            receiver: 1 - sender,
            tasks,
            gain,
            mean,
        };
        let better = match &best {
            None => true,
            Some(b) => mean < b.mean,
        };
        if better {
            best = Some(candidate);
        }
    }
    best.expect("two senders evaluated")
}

/// Result of the deadline-probability optimisation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeadlineOptimum {
    /// Sending node.
    pub sender: usize,
    /// Receiving node.
    pub receiver: usize,
    /// Number of tasks to ship at `t = 0`.
    pub tasks: u32,
    /// The corresponding gain `K`.
    pub gain: f64,
    /// Maximised `P(T ≤ deadline)`.
    pub probability: f64,
}

/// Maximises `P(T ≤ deadline)` over the LBP-1 action space, using the
/// Eq. (5) distribution instead of the Eq. (4) mean — risk-sensitive
/// planning the paper's machinery enables but never exercises.
///
/// The CDF solve is much costlier than a mean solve, so the search
/// evaluates `grid_points + 1` evenly spaced transfer sizes per
/// orientation (11 is plenty in practice: the objective is smooth in `L`).
///
/// # Panics
/// Panics if `deadline` is not positive or `grid_points == 0`.
#[must_use]
pub fn optimize_lbp1_deadline(
    params: &TwoNodeParams,
    m0: [u32; 2],
    deadline: f64,
    initial: WorkState,
    grid_points: u32,
) -> DeadlineOptimum {
    assert!(
        deadline > 0.0 && deadline.is_finite(),
        "deadline must be positive"
    );
    assert!(grid_points > 0, "need at least one grid interval");
    let times = [deadline];
    let mut best: Option<DeadlineOptimum> = None;
    for sender in 0..2usize {
        let m_max = m0[sender];
        let mut seen = std::collections::HashSet::new();
        for g in 0..=grid_points {
            let l = (f64::from(g) / f64::from(grid_points) * f64::from(m_max)).round() as u32;
            if !seen.insert(l) {
                continue;
            }
            let cdf = crate::cdf::lbp1_cdf(params, m0, sender, l, initial, &times);
            let probability = cdf.values[0];
            let gain = if m_max == 0 {
                0.0
            } else {
                f64::from(l) / f64::from(m_max)
            };
            let candidate = DeadlineOptimum {
                sender,
                receiver: 1 - sender,
                tasks: l,
                gain,
                probability,
            };
            if best.as_ref().is_none_or(|b| probability > b.probability) {
                best = Some(candidate);
            }
        }
    }
    best.expect("grid evaluated")
}

/// Mean completion time for each gain in `gains` with a fixed sender —
/// the theory curve of the paper's Fig. 3.
///
/// # Panics
/// Panics if any gain is outside `[0, 1]`.
#[must_use]
pub fn gain_sweep(
    params: &TwoNodeParams,
    m0: [u32; 2],
    sender: usize,
    gains: &[f64],
    initial: WorkState,
) -> Vec<f64> {
    let ev = Lbp1Evaluator::new(params, m0);
    gains
        .iter()
        .map(|&k| ev.mean_for_gain(sender, k, initial))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rates::{DelayModel, TwoNodeParams};

    fn quick_params() -> TwoNodeParams {
        // Paper-shaped but smaller workloads solve fast.
        TwoNodeParams::new(
            [1.08, 1.86],
            [0.05, 0.05],
            [0.1, 0.05],
            DelayModel::per_task(0.02),
        )
    }

    #[test]
    fn optimum_is_the_grid_minimum() {
        let p = quick_params();
        let m0 = [30u32, 18];
        let ev = Lbp1Evaluator::new(&p, m0);
        let (l_star, v_star) = optimize_transfer(&ev, 0, WorkState::BOTH_UP);
        for l in 0..=m0[0] {
            let v = ev.mean(0, l, WorkState::BOTH_UP);
            assert!(v >= v_star - 1e-9, "L={l}: {v} < claimed optimum {v_star}");
        }
        assert!((ev.mean(0, l_star, WorkState::BOTH_UP) - v_star).abs() < 1e-12);
    }

    #[test]
    fn sender_is_the_loaded_node() {
        // With m = (30, 5), node 1 (index 0) must send toward the faster,
        // emptier node.
        let p = quick_params();
        let opt = optimize_lbp1(&p, [30, 5], WorkState::BOTH_UP);
        assert_eq!(opt.sender, 0);
        assert_eq!(opt.receiver, 1);
        assert!(opt.tasks > 0);
    }

    #[test]
    fn sender_flips_with_the_workload() {
        let p = quick_params();
        let opt = optimize_lbp1(&p, [5, 30], WorkState::BOTH_UP);
        assert_eq!(
            opt.sender, 1,
            "node 2 holds the load and the other node idles"
        );
        assert!(opt.tasks > 0);
    }

    #[test]
    fn churn_reduces_optimal_gain() {
        // The paper's central qualitative claim (§4, Fig. 3): under node
        // failure the optimum shifts to a smaller K than without failure.
        let with = quick_params();
        let without = with.without_failures();
        let m0 = [50u32, 30];
        let k_fail = optimize_lbp1(&with, m0, WorkState::BOTH_UP).gain;
        let k_nofail = optimize_lbp1(&without, m0, WorkState::BOTH_UP).gain;
        assert!(
            k_fail < k_nofail,
            "churn-aware optimum K={k_fail} should be below no-failure K={k_nofail}"
        );
    }

    #[test]
    fn gain_sweep_matches_pointwise_evaluation() {
        let p = quick_params();
        let gains = [0.0, 0.25, 0.5, 0.75, 1.0];
        let sweep = gain_sweep(&p, [20, 12], 0, &gains, WorkState::BOTH_UP);
        let ev = Lbp1Evaluator::new(&p, [20, 12]);
        for (i, &k) in gains.iter().enumerate() {
            let direct = ev.mean_for_gain(0, k, WorkState::BOTH_UP);
            assert_eq!(sweep[i], direct);
        }
    }

    #[test]
    fn deadline_optimum_is_a_probability_and_beats_the_corners() {
        let p = quick_params();
        let m0 = [20u32, 12];
        let deadline = 20.0;
        let opt = optimize_lbp1_deadline(&p, m0, deadline, WorkState::BOTH_UP, 10);
        assert!((0.0..=1.0).contains(&opt.probability));
        // It must beat (or tie) the no-transfer and full-transfer corners.
        for (s, l) in [(0usize, 0u32), (0, 20), (1, 12)] {
            let q = crate::cdf::lbp1_cdf(&p, m0, s, l, WorkState::BOTH_UP, &[deadline]).values[0];
            assert!(
                opt.probability >= q - 1e-9,
                "corner ({s},{l}) beats the optimum"
            );
        }
    }

    #[test]
    fn generous_deadline_makes_everything_certain() {
        // ~40x the mean completion time (the RK4 step count scales with
        // deadline · Λ_max, so keep the horizon moderate).
        let p = quick_params();
        let opt = optimize_lbp1_deadline(&p, [5, 3], 400.0, WorkState::BOTH_UP, 4);
        assert!(opt.probability > 0.999);
    }

    #[test]
    #[should_panic(expected = "deadline must be positive")]
    fn nonpositive_deadline_rejected() {
        let p = quick_params();
        let _ = optimize_lbp1_deadline(&p, [5, 3], 0.0, WorkState::BOTH_UP, 4);
    }

    #[test]
    fn empty_sender_yields_zero_transfer() {
        let p = quick_params();
        let ev = Lbp1Evaluator::new(&p, [0, 10]);
        let (l, v) = optimize_transfer(&ev, 0, WorkState::BOTH_UP);
        assert_eq!(l, 0);
        assert!(v.is_finite());
    }

    #[test]
    fn optimum_mean_is_no_worse_than_doing_nothing() {
        let p = quick_params();
        let m0 = [25u32, 10];
        let opt = optimize_lbp1(&p, m0, WorkState::BOTH_UP);
        let nothing = Lbp1Evaluator::new(&p, m0).mean(0, 0, WorkState::BOTH_UP);
        assert!(opt.mean <= nothing + 1e-12);
    }
}
