//! Integration tests for the campaign engine: sequential stopping must
//! be invariant across `threads`/`chunk`, the content-addressed cache
//! must make warm re-runs free, and interrupted campaigns must finish
//! with byte-identical CSV.

use std::fs;
use std::path::{Path, PathBuf};

use churnbal_lab::campaign::{Campaign, CampaignRunOptions};
use proptest::prelude::*;

/// A small two-node closed system (a shrunken paper-fig5) so every
/// replication finishes in microseconds.
const MINI_SCENARIO: &str = r#"name = "mini"
description = "campaign test scenario"
reps = 8
seed = 7

[network]
fixed = 0.0
per_task = 0.02
law = "exponential-batch"

[policy]
kind = "lbp1-optimal"

[churn]
kind = "independent"

[arrivals]
kind = "none"

[[node]]
service_rate = 1.08
failure_rate = 0.05
recovery_rate = 0.1
initial_tasks = 12
count = 1

[[node]]
service_rate = 1.86
failure_rate = 0.05
recovery_rate = 0.05
initial_tasks = 0
count = 1
"#;

/// A fresh campaign directory under the system temp dir.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("churnbal-campaign-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(dir.join("scenarios")).expect("create temp dir");
    dir
}

/// Writes the one-spec campaign: two policies on the mini scenario.
fn write_campaign(dir: &Path, tolerance: f64, antithetic: bool) {
    fs::write(dir.join("scenarios").join("mini.toml"), MINI_SCENARIO).expect("scenario file");
    fs::write(
        dir.join("var-a.toml"),
        format!(
            "scenarios = [\"scenarios/mini.toml\"]\n\
             policies = [\"lbp1-optimal\", \"none\"]\n\
             \n\
             [stopping]\n\
             tolerance = {tolerance}\n\
             r0 = 4\n\
             max_reps = 32\n\
             antithetic = {antithetic}\n\
             \n\
             [fields]\n\
             figure = \"t\"\n"
        ),
    )
    .expect("spec file");
}

fn run_to_completion(dir: &Path, threads: usize, chunk: usize) -> String {
    let mut campaign = Campaign::load(dir).expect("campaign loads");
    let report = campaign
        .run(&CampaignRunOptions {
            threads,
            chunk,
            max_cells: None,
        })
        .expect("campaign runs");
    assert_eq!(report.cells_done, report.cells_total, "all cells finish");
    fs::read_to_string(dir.join("out").join("var-a.csv")).expect("csv written")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    /// The satellite property: final replication counts and CSV bytes do
    /// not depend on the worker thread count or the scheduler chunk
    /// size, with and without antithetic pairing.
    #[test]
    fn stopping_is_invariant_across_threads_and_chunks(
        tolerance in prop_oneof![Just(2.0f64), Just(4.0), Just(8.0)],
        chunk in 1usize..5,
        antithetic in proptest::bool::ANY,
    ) {
        let d1 = temp_dir("inv-t1");
        let d4 = temp_dir("inv-t4");
        write_campaign(&d1, tolerance, antithetic);
        write_campaign(&d4, tolerance, antithetic);
        let csv1 = run_to_completion(&d1, 1, 1);
        let csv4 = run_to_completion(&d4, 4, chunk);
        prop_assert_eq!(&csv1, &csv4);
        let reps1 = Campaign::load(&d1).expect("reload").cell_summaries();
        let reps4 = Campaign::load(&d4).expect("reload").cell_summaries();
        prop_assert_eq!(reps1, reps4);
        let _ = fs::remove_dir_all(&d1);
        let _ = fs::remove_dir_all(&d4);
    }
}

/// The satellite property: a warm-cache re-run of an unchanged campaign
/// performs zero simulations yet emits byte-identical CSV.
#[test]
fn warm_rerun_is_zero_simulation_and_byte_identical() {
    let dir = temp_dir("warm");
    write_campaign(&dir, 4.0, false);
    let cold_csv = run_to_completion(&dir, 2, 0);

    let mut campaign = Campaign::load(&dir).expect("warm load");
    let report = campaign
        .run(&CampaignRunOptions::default())
        .expect("warm run");
    assert_eq!(report.rounds, 0, "warm cache runs no rounds");
    assert_eq!(report.reps_run, 0, "warm cache simulates nothing");
    assert_eq!(report.cells_done, report.cells_total);
    let warm_csv = fs::read_to_string(dir.join("out").join("var-a.csv")).expect("csv");
    assert_eq!(cold_csv, warm_csv);
    let _ = fs::remove_dir_all(&dir);
}

/// Changing a stopping input changes the cell digests, so nothing stale
/// is reused: the re-run starts cold.
#[test]
fn changed_spec_invalidates_the_cache() {
    let dir = temp_dir("invalidate");
    write_campaign(&dir, 4.0, false);
    run_to_completion(&dir, 2, 0);
    // Tighten the tolerance: every cell re-keys and recomputes.
    write_campaign(&dir, 2.0, false);
    let mut campaign = Campaign::load(&dir).expect("reload");
    let report = campaign
        .run(&CampaignRunOptions::default())
        .expect("re-run");
    assert!(report.reps_run > 0, "changed spec must recompute");
    let _ = fs::remove_dir_all(&dir);
}

/// An interrupted campaign (stopped at deterministic `--max-cells`
/// barriers) finishes with CSV byte-identical to an uninterrupted run.
#[test]
fn interrupted_run_resumes_to_byte_identical_csv() {
    let straight = temp_dir("int-straight");
    write_campaign(&straight, 4.0, false);
    let want = run_to_completion(&straight, 2, 0);

    let interrupted = temp_dir("int-stopgo");
    write_campaign(&interrupted, 4.0, false);
    let mut invocations = 0;
    loop {
        invocations += 1;
        assert!(invocations <= 16, "campaign must converge");
        let mut campaign = Campaign::load(&interrupted).expect("load");
        let report = campaign
            .run(&CampaignRunOptions {
                threads: 3,
                chunk: 2,
                max_cells: Some(1),
            })
            .expect("partial run");
        if report.cells_done == report.cells_total {
            break;
        }
    }
    let got = fs::read_to_string(interrupted.join("out").join("var-a.csv")).expect("csv");
    assert_eq!(want, got);
    let _ = fs::remove_dir_all(&straight);
    let _ = fs::remove_dir_all(&interrupted);
}

/// `report` refuses an unfinished campaign (naming `campaign run`) and
/// renders markdown tables once it is finished; the CLI front end wires
/// both up.
#[test]
fn report_and_cli_cover_the_campaign_lifecycle() {
    let dir = temp_dir("report");
    write_campaign(&dir, 4.0, false);
    let err = Campaign::load(&dir)
        .expect("load")
        .report()
        .expect_err("unfinished campaign");
    assert!(err.contains("campaign run"), "{err}");

    let args: Vec<String> = ["campaign", "run", dir.to_str().expect("utf8 path")]
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    let out = churnbal_lab::cli::run(&args).expect("cli campaign run");
    assert!(out.contains("replication(s) simulated"), "{out}");

    let args: Vec<String> = ["campaign", "status", dir.to_str().expect("utf8 path")]
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    let status = churnbal_lab::cli::run(&args).expect("cli campaign status");
    assert!(status.contains("var-a"), "{status}");
    assert!(status.contains("cells done"), "{status}");

    let args: Vec<String> = ["report", dir.to_str().expect("utf8 path")]
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    let md = churnbal_lab::cli::run(&args).expect("cli report");
    assert!(md.contains("## var-a"), "{md}");
    assert!(md.contains("| scenario |"), "{md}");
    assert!(md.contains("figure = t"), "{md}");
    let _ = fs::remove_dir_all(&dir);
}

/// Antithetic pairing runs on genuinely different streams than the
/// independent map, never splits a mirror pair across rounds (every cell
/// accumulates an even replication count), and stays deterministic.
#[test]
fn antithetic_pairs_stay_whole_and_deterministic() {
    let plain = temp_dir("anti-plain");
    let anti = temp_dir("anti-anti");
    let anti2 = temp_dir("anti-anti2");
    write_campaign(&plain, 4.0, false);
    write_campaign(&anti, 4.0, true);
    write_campaign(&anti2, 4.0, true);
    let plain_csv = run_to_completion(&plain, 2, 0);
    let anti_csv = run_to_completion(&anti, 2, 0);
    let anti_csv2 = run_to_completion(&anti2, 4, 3);
    assert_ne!(
        plain_csv, anti_csv,
        "mirrored streams must change the samples"
    );
    assert_eq!(anti_csv, anti_csv2, "antithetic runs are deterministic");
    for (spec, scenario, point, policy, reps) in
        Campaign::load(&anti).expect("reload").cell_summaries()
    {
        assert!(
            reps % 2 == 0,
            "{spec}/{scenario}/{point}/{policy}: odd rep count {reps} splits a mirror pair"
        );
    }
    let _ = fs::remove_dir_all(&plain);
    let _ = fs::remove_dir_all(&anti);
    let _ = fs::remove_dir_all(&anti2);
}
