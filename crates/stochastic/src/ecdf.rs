//! Empirical cumulative distribution functions and the Kolmogorov–Smirnov
//! distance.
//!
//! Used to (a) regenerate Fig. 5-style CDF plots from Monte-Carlo output and
//! (b) *test* that simulated completion-time laws agree with the analytical
//! CDF of Eq. (5).

/// Empirical CDF of a sample, queryable at arbitrary points.
#[derive(Clone, Debug)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF of `samples`.
    ///
    /// # Panics
    /// Panics if `samples` is empty or contains NaN.
    #[must_use]
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "ECDF needs at least one sample");
        assert!(samples.iter().all(|x| !x.is_nan()), "NaN in ECDF input");
        samples.sort_by(|a, b| a.partial_cmp(b).expect("checked for NaN"));
        Self { sorted: samples }
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false (construction rejects empty data).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Evaluates `F̂(x) = #{samples ≤ x} / n`.
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The sorted underlying samples.
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// One-sample Kolmogorov–Smirnov statistic against a reference CDF `f`:
    /// `sup_x |F̂(x) − F(x)|`, evaluated at the sample points (where the
    /// supremum of a step-vs-continuous comparison is attained).
    pub fn ks_distance<F: Fn(f64) -> f64>(&self, f: F) -> f64 {
        let n = self.sorted.len() as f64;
        let mut d: f64 = 0.0;
        for (i, &x) in self.sorted.iter().enumerate() {
            let fx = f(x);
            let hi = (i as f64 + 1.0) / n - fx; // F̂ just after x
            let lo = fx - i as f64 / n; // F̂ just before x
            d = d.max(hi.abs()).max(lo.abs());
        }
        d
    }

    /// Two-sample Kolmogorov–Smirnov statistic `sup_x |F̂₁(x) − F̂₂(x)|`.
    #[must_use]
    pub fn ks_two_sample(&self, other: &Ecdf) -> f64 {
        let mut d: f64 = 0.0;
        for &x in self.sorted.iter().chain(other.sorted.iter()) {
            d = d.max((self.eval(x) - other.eval(x)).abs());
        }
        d
    }
}

/// Critical value of the one-sample KS test at significance `alpha`
/// (asymptotic formula `c(α)·√(1/n)`); the Monte-Carlo-vs-model tests accept
/// when the statistic is below this.
///
/// Supported `alpha`: 0.10, 0.05, 0.01, 0.001.
///
/// # Panics
/// Panics for unsupported significance levels.
#[must_use]
pub fn ks_critical_value(n: usize, alpha: f64) -> f64 {
    let c = if (alpha - 0.10).abs() < 1e-12 {
        1.224
    } else if (alpha - 0.05).abs() < 1e-12 {
        1.358
    } else if (alpha - 0.01).abs() < 1e-12 {
        1.628
    } else if (alpha - 0.001).abs() < 1e-12 {
        1.949
    } else {
        panic!("unsupported alpha {alpha}")
    };
    c / (n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_steps() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(9.0), 1.0);
    }

    #[test]
    fn handles_ties() {
        let e = Ecdf::new(vec![2.0, 2.0, 2.0, 5.0]);
        assert_eq!(e.eval(1.9), 0.0);
        assert_eq!(e.eval(2.0), 0.75);
    }

    #[test]
    fn ks_zero_against_itself_like_cdf() {
        // ECDF vs a step-matching CDF evaluated from the same points can't be
        // exactly zero, but vs the true law of a large sample it is small.
        use crate::dist::{Exponential, Sample};
        use crate::rng::Xoshiro256pp;
        let d = Exponential::new(1.0);
        let mut rng = Xoshiro256pp::seed_from_u64(77);
        let n = 20_000;
        let e = Ecdf::new((0..n).map(|_| d.sample(&mut rng)).collect());
        let ks = e.ks_distance(|x| d.cdf(x));
        assert!(ks < ks_critical_value(n, 0.001), "ks = {ks}");
    }

    #[test]
    fn ks_detects_wrong_distribution() {
        use crate::dist::{Exponential, Sample};
        use crate::rng::Xoshiro256pp;
        let d = Exponential::new(1.0);
        let wrong = Exponential::new(2.0);
        let mut rng = Xoshiro256pp::seed_from_u64(78);
        let n = 20_000;
        let e = Ecdf::new((0..n).map(|_| d.sample(&mut rng)).collect());
        let ks = e.ks_distance(|x| wrong.cdf(x));
        assert!(ks > ks_critical_value(n, 0.001), "ks = {ks} should reject");
    }

    #[test]
    fn two_sample_ks_symmetric() {
        let a = Ecdf::new(vec![1.0, 2.0, 3.0]);
        let b = Ecdf::new(vec![1.5, 2.5, 3.5, 4.5]);
        let d1 = a.ks_two_sample(&b);
        let d2 = b.ks_two_sample(&a);
        assert!((d1 - d2).abs() < 1e-12);
        assert!(d1 > 0.0);
    }

    #[test]
    fn critical_value_decreases_with_n() {
        assert!(ks_critical_value(100, 0.05) > ks_critical_value(10_000, 0.05));
    }

    #[test]
    #[should_panic(expected = "unsupported alpha")]
    fn critical_value_rejects_unknown_alpha() {
        let _ = ks_critical_value(100, 0.2);
    }
}
