//! LBP-1: the preemptive policy (§2.1).
//!
//! One node ships `L_ji = K·m_i` tasks (Eq. 1) to the other at `t = 0` and
//! **no further balancing ever happens** — the whole intelligence of the
//! policy sits in choosing `K` (and the orientation) *before* execution,
//! from the regeneration-theory model that accounts for failure and
//! recovery statistics.

use churnbal_cluster::{Policy, SystemConfig, SystemView, TransferOrder};
use churnbal_model::optimize::optimize_lbp1;
use churnbal_model::WorkState;

use crate::glue::{initial_workload, model_params};

/// The preemptive one-shot policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Lbp1 {
    sender: usize,
    receiver: usize,
    tasks: u32,
    gain: f64,
}

impl Lbp1 {
    /// A fixed transfer of `tasks` tasks from `sender` to `receiver`.
    ///
    /// # Panics
    /// Panics if `sender == receiver`.
    #[must_use]
    pub fn new(sender: usize, receiver: usize, tasks: u32) -> Self {
        assert_ne!(sender, receiver, "sender and receiver must differ");
        Self {
            sender,
            receiver,
            tasks,
            gain: f64::NAN,
        }
    }

    /// Eq. (1): transfer `round(K · m_sender)` tasks.
    ///
    /// # Panics
    /// Panics unless `K ∈ [0, 1]` and the node indices differ.
    #[must_use]
    pub fn with_gain(sender: usize, receiver: usize, m_sender: u32, gain: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&gain),
            "gain K must be in [0,1], got {gain}"
        );
        assert_ne!(sender, receiver, "sender and receiver must differ");
        let tasks = (gain * f64::from(m_sender)).round() as u32;
        Self {
            sender,
            receiver,
            tasks,
            gain,
        }
    }

    /// The model-optimal LBP-1 for a two-node configuration: gain, sender
    /// and receiver minimising the mean overall completion time of the
    /// regenerative model (§2.1.1), churn statistics included.
    ///
    /// # Panics
    /// Panics unless the configuration has exactly two nodes.
    #[must_use]
    pub fn optimal(config: &SystemConfig) -> Self {
        let params = model_params(config);
        let m0 = initial_workload(config);
        let opt = optimize_lbp1(&params, m0, WorkState::BOTH_UP);
        Self {
            sender: opt.sender,
            receiver: opt.receiver,
            tasks: opt.tasks,
            gain: opt.gain,
        }
    }

    /// The sending node.
    #[must_use]
    pub fn sender(&self) -> usize {
        self.sender
    }

    /// The receiving node.
    #[must_use]
    pub fn receiver(&self) -> usize {
        self.receiver
    }

    /// Number of tasks shipped at `t = 0`.
    #[must_use]
    pub fn tasks(&self) -> u32 {
        self.tasks
    }

    /// The gain `K` (NaN when constructed from a raw task count).
    #[must_use]
    pub fn gain(&self) -> f64 {
        self.gain
    }
}

impl Policy for Lbp1 {
    fn name(&self) -> &str {
        "LBP-1"
    }

    fn on_start(&mut self, _view: &SystemView<'_>, orders: &mut Vec<TransferOrder>) {
        if self.tasks > 0 {
            orders.push(TransferOrder {
                from: self.sender,
                to: self.receiver,
                tasks: self.tasks,
            });
        }
    }
    // All other hooks: deliberately no action (the defining property of
    // LBP-1 — §2.1: "no other balancing action is taken afterwards").
}

#[cfg(test)]
mod tests {
    use super::*;
    use churnbal_cluster::{simulate, SimOptions};

    #[test]
    fn ships_once_at_start() {
        let cfg = SystemConfig::paper([100, 60]);
        let mut p = Lbp1::with_gain(0, 1, 100, 0.35);
        assert_eq!(p.tasks(), 35);
        let out = simulate(&cfg, &mut p, 11, SimOptions::default());
        assert!(out.completed);
        assert_eq!(out.metrics.transfers, 1);
        assert_eq!(out.metrics.tasks_shipped, 35);
    }

    #[test]
    fn zero_gain_means_no_transfer() {
        let cfg = SystemConfig::paper([100, 60]);
        let mut p = Lbp1::with_gain(0, 1, 100, 0.0);
        let out = simulate(&cfg, &mut p, 12, SimOptions::default());
        assert_eq!(out.metrics.transfers, 0);
    }

    #[test]
    fn optimal_matches_paper_fig3() {
        let cfg = SystemConfig::paper([100, 60]);
        let p = Lbp1::optimal(&cfg);
        assert_eq!(p.sender(), 0, "node 1 must send");
        // Paper: K* = 0.35 ⇒ 35 tasks. Allow the immediate neighbourhood.
        assert!(
            (30..=40).contains(&p.tasks()),
            "optimal transfer {} should be near the paper's 35",
            p.tasks()
        );
    }

    #[test]
    fn optimal_without_failure_ships_more() {
        let with = Lbp1::optimal(&SystemConfig::paper([100, 60]));
        let without = Lbp1::optimal(&SystemConfig::paper_no_failure([100, 60]));
        assert!(
            without.tasks() > with.tasks(),
            "churn must shrink the transfer ({} vs {})",
            with.tasks(),
            without.tasks()
        );
    }

    #[test]
    fn takes_no_action_after_start() {
        let cfg = SystemConfig::paper([50, 30]);
        let mut p = Lbp1::with_gain(0, 1, 50, 0.4);
        let out = simulate(&cfg, &mut p, 13, SimOptions::default());
        // exactly the single initial transfer, regardless of churn
        assert_eq!(out.metrics.transfers, 1);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn self_transfer_rejected() {
        let _ = Lbp1::new(0, 0, 5);
    }

    #[test]
    #[should_panic(expected = "in [0,1]")]
    fn bad_gain_rejected() {
        let _ = Lbp1::with_gain(0, 1, 10, 1.5);
    }
}
