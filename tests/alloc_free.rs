//! Proof of the zero-allocation hot path: a counting global allocator
//! wraps the system allocator, and a warmed-up simulator must drive entire
//! replications — event scheduling, cancellation, pops, policy callbacks
//! (`view_at` + hook + `apply_orders`) — without a single allocation.
//!
//! This file deliberately holds ONE test: the counter is process-global,
//! and the default test harness runs sibling tests concurrently.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use churnbal::cluster::{
    run_grid_streaming, ChurnModel, NetworkConfig, NodeConfig, PointJob, SimOptions, Simulator,
    SystemConfig,
};
use churnbal::core::Lbp2;
use churnbal::desim::EventQueue;
use churnbal::stochastic::StreamFactory;

struct CountingAllocator;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

std::thread_local! {
    /// Only an explicitly armed thread is counted. The libtest *main*
    /// thread occasionally allocates while our test runs on the test
    /// thread — its blocking channel `recv()` lazily builds an mpmc
    /// context and registers a waker when it actually has to park —
    /// and that harness noise must not fail the gate. `Cell<bool>`
    /// with a `const` initializer compiles to a plain `#[thread_local]`
    /// access: no lazy init, no drop registration, and crucially no
    /// allocation from inside the allocator itself.
    static COUNTING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

// The safety obligations are exactly `System`'s — every call is forwarded
// verbatim; the counter has no effect on layout or pointers.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.with(std::cell::Cell::get) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.with(std::cell::Cell::get) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Runs `f` on this thread with counting armed and returns how many
/// allocations it performed. Everything measured in this file is
/// single-threaded (the scheduler sections pass `threads = 1`, which
/// runs inline on the calling thread), so arming one thread sees every
/// allocation under test.
fn count_allocs(f: impl FnOnce()) -> u64 {
    COUNTING.with(|c| c.set(true));
    let before = allocations();
    f();
    let n = allocations() - before;
    COUNTING.with(|c| c.set(false));
    n
}

#[test]
fn warm_simulation_hot_path_does_not_allocate() {
    // --- 1. The event queue alone: schedule/cancel/pop churn in steady
    //        state reuses slots and heap capacity.
    let mut q = EventQueue::new();
    for round in 0..64u32 {
        let a = q.schedule_in(0.5, round);
        q.schedule_in(1.0, round);
        q.cancel(a);
        q.pop();
    }
    while q.pop().is_some() {}
    let queue_allocs = count_allocs(|| {
        for round in 0..512u32 {
            let a = q.schedule_in(0.5, round);
            q.schedule_in(1.0, round);
            assert!(q.cancel(a));
            q.pop();
        }
        while q.pop().is_some() {}
    });
    assert_eq!(
        queue_allocs, 0,
        "EventQueue schedule/cancel/pop allocated after warm-up"
    );

    // --- 2. Whole replications on the paper system under LBP-2 (start
    //        balancing + Eq. 8 failure compensation): after one warm-up
    //        run, an identical reset + run allocates nothing.
    let paper = SystemConfig::paper([100, 60]);
    assert_run_is_allocation_free(&paper, 11, "paper two-node");

    // --- 3. A cancel-heavy multi-node system: cascading churn redraws
    //        every pending failure event at each churn transition, and the
    //        multi-node Eq. 6-7 partition exercises the n-node order path.
    let cascading = SystemConfig::new(
        (0..8)
            .map(|_| NodeConfig::new(1.0, 0.05, 0.4, 25))
            .collect(),
        NetworkConfig::exponential(0.01),
    )
    .with_churn_model(ChurnModel::Cascading { amplification: 2.0 });
    assert_run_is_allocation_free(&cascading, 17, "cascading eight-node");

    // --- 4. A warmed-up *sweep point* under the grid scheduler: re-running
    //        an entire already-warmed point (rebind + every replication)
    //        adds only the constant per-point result-buffer cost — zero
    //        allocations per replication — and that constant does not grow
    //        with the replication count.
    assert_warm_sweep_point_is_allocation_free(4);
    assert_warm_sweep_point_is_allocation_free(16);
}

/// Runs the scheduler on `[A, B]` and on `[A, B, B]` (the trailing point
/// repeated): the extra point replays `B`'s exact `(seed, r)` trajectories
/// on a simulator already warmed by the first `B`, so the allocation
/// delta is the per-point constant (result vectors and their hand-off)
/// and must not depend on `reps`.
fn assert_warm_sweep_point_is_allocation_free(reps: u64) {
    let point_a = SystemConfig::paper([40, 25]);
    let point_b = SystemConfig::new(
        (0..4)
            .map(|_| NodeConfig::new(1.0, 0.05, 0.4, 15))
            .collect(),
        NetworkConfig::exponential(0.01),
    );
    let job = |config, reps| PointJob {
        config,
        reps,
        seed: 23,
        rep_base: 0,
        antithetic: false,
        options: SimOptions::default(),
    };
    let count_run = |jobs: &[PointJob<'_>]| -> u64 {
        count_allocs(|| {
            run_grid_streaming(jobs, &|_, _| Lbp2::new(1.0), 1, 0, |_, stats| {
                assert!(!stats.completion_times.is_empty());
                Ok(())
            })
            .expect("grid runs");
        })
    };
    let base = [job(&point_a, reps), job(&point_b, reps)];
    let with_warm_repeat = [
        job(&point_a, reps),
        job(&point_b, reps),
        job(&point_b, reps),
    ];
    // Warm-up invocations: let lazy process-level one-time costs land.
    let _ = count_run(&base);
    let _ = count_run(&with_warm_repeat);
    let base_allocs = count_run(&base);
    let repeat_allocs = count_run(&with_warm_repeat);
    let per_warm_point = repeat_allocs.saturating_sub(base_allocs);
    assert!(
        per_warm_point <= 8,
        "re-running a warmed sweep point of {reps} replications performed \
         {per_warm_point} allocations — the hot path must only pay the \
         constant per-point result hand-off (base {base_allocs}, with \
         repeat {repeat_allocs})"
    );
}

fn assert_run_is_allocation_free(config: &SystemConfig, seed: u64, label: &str) {
    let factory = StreamFactory::new(seed);
    let sub = factory.subfactory(0);
    let mut policy = Lbp2::new(1.0);
    let mut sim = Simulator::new(config, &sub, SimOptions::default());
    // Warm-up: reach the high-water marks of the event queue, the order
    // sink and every scratch buffer on the exact trajectory we re-run.
    let warm = sim.run_summary(&mut policy);
    assert!(warm.completed, "{label}: warm-up must complete");
    sim.reset(&sub);
    let mut summary = None;
    let steady_allocs = count_allocs(|| summary = Some(sim.run_summary(&mut policy)));
    let summary = summary.expect("run completed");
    assert_eq!(
        summary.completion_time, warm.completion_time,
        "{label}: reset must replay the warm-up trajectory"
    );
    assert!(
        summary.events > 100,
        "{label}: workload too trivial to prove anything"
    );
    assert_eq!(
        steady_allocs, 0,
        "{label}: a warmed-up replication performed {steady_allocs} allocations \
         (events: {})",
        summary.events
    );
}
