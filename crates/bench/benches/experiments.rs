//! One Criterion bench per paper artefact: measures the cost of
//! regenerating each table/figure (with reduced replication counts, so
//! `cargo bench` stays minutes, not hours). The full regeneration binaries
//! live in `src/bin/`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use churnbal_bench::presets::{self, FIG3_WORKLOAD};
use churnbal_cluster::testbed::{sample_batch_delays, sample_processing_times};
use churnbal_cluster::{run_replications, simulate, SimOptions};
use churnbal_core::{model_params, Lbp1, Lbp2};
use churnbal_model::mean::Lbp1Evaluator;
use churnbal_model::optimize::optimize_lbp1;
use churnbal_model::{lbp1_cdf, WorkState};
use churnbal_stochastic::{fit, Xoshiro256pp};

fn fig1_calibration(c: &mut Criterion) {
    c.bench_function("fig1_service_pdf_estimation", |b| {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        b.iter(|| {
            let xs = sample_processing_times(1.86, 5000, &mut rng);
            black_box(fit::exp_rate_mle(&xs))
        });
    });
}

fn fig2_calibration(c: &mut Criterion) {
    c.bench_function("fig2_delay_sweep", |b| {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        b.iter(|| {
            let mut acc = 0.0;
            for l in (10..=100).step_by(10) {
                acc += sample_batch_delays(l, 30, &mut rng).iter().sum::<f64>();
            }
            black_box(acc)
        });
    });
}

fn fig3_gain_sweep(c: &mut Criterion) {
    let params = model_params(&presets::mc_config(FIG3_WORKLOAD));
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.bench_function("theory_21_gains", |b| {
        b.iter(|| {
            let ev = Lbp1Evaluator::new(&params, FIG3_WORKLOAD);
            let mut acc = 0.0;
            for i in 0..=20 {
                acc += ev.mean_for_gain(0, f64::from(i) * 0.05, WorkState::BOTH_UP);
            }
            black_box(acc)
        });
    });
    let cfg = presets::mc_config(FIG3_WORKLOAD);
    g.bench_function("mc_one_gain_50_reps", |b| {
        b.iter(|| {
            run_replications(
                &cfg,
                &|_| Lbp1::with_gain(0, 1, 100, 0.35),
                50,
                9,
                0,
                SimOptions::default(),
            )
            .mean()
        });
    });
    g.finish();
}

fn fig4_traced_realisation(c: &mut Criterion) {
    let cfg = presets::mc_config(FIG3_WORKLOAD);
    c.bench_function("fig4_traced_run", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            simulate(
                &cfg,
                &mut Lbp2::new(1.0),
                seed,
                SimOptions {
                    record_trace: true,
                    ..SimOptions::default()
                },
            )
            .completion_time
        });
    });
}

fn fig5_cdf(c: &mut Criterion) {
    let params = model_params(&presets::mc_config([50, 0]));
    let times: Vec<f64> = (0..=125).map(|i| f64::from(i) * 2.0).collect();
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("cdf_50_0", |b| {
        let opt = optimize_lbp1(&params, [50, 0], WorkState::BOTH_UP);
        b.iter(|| {
            lbp1_cdf(
                black_box(&params),
                [50, 0],
                opt.sender,
                opt.tasks,
                WorkState::BOTH_UP,
                &times,
            )
        });
    });
    g.finish();
}

fn table1_row(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("optimize_200_100", |b| {
        let params = model_params(&presets::mc_config([200, 100]));
        b.iter(|| optimize_lbp1(black_box(&params), [200, 100], WorkState::BOTH_UP));
    });
    g.finish();
}

fn table2_row(c: &mut Criterion) {
    let cfg = presets::mc_config([200, 100]);
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("lbp2_50_reps_200_100", |b| {
        let k = Lbp2::optimal_initial_gain(&cfg);
        b.iter(|| {
            run_replications(&cfg, &|_| Lbp2::new(k), 50, 3, 0, SimOptions::default()).mean()
        });
    });
    g.finish();
}

fn table3_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    g.bench_function("delay_2s_both_policies", |b| {
        let cfg = presets::mc_config_with_delay(FIG3_WORKLOAD, 2.0);
        let params = model_params(&cfg);
        b.iter(|| {
            let lbp1 = optimize_lbp1(&params, FIG3_WORKLOAD, WorkState::BOTH_UP).mean;
            let lbp2 =
                run_replications(&cfg, &|_| Lbp2::new(1.0), 50, 4, 0, SimOptions::default()).mean();
            black_box((lbp1, lbp2))
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    fig1_calibration,
    fig2_calibration,
    fig3_gain_sweep,
    fig4_traced_realisation,
    fig5_cdf,
    table1_row,
    table2_row,
    table3_point
);
criterion_main!(benches);
