//! Plain-text table formatting for the experiment binaries.

/// Column-aligned text table builder.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(c);
                line.push_str(&" ".repeat(width[i] - c.len()));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with 2 decimals (the paper's table precision).
#[must_use]
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a mean ± half-width pair.
#[must_use]
pub fn pm(mean: f64, half: f64) -> String {
    format!("{mean:.2} ± {half:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["a", "long-header", "b"]);
        t.row(["1", "2", "3"]);
        t.row(["100", "2", "33"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a    "));
        assert!(lines[2].starts_with("1    "));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(pm(2.0, 0.5), "2.00 ± 0.50");
    }
}
