//! Proof of the zero-allocation hot path: a counting global allocator
//! wraps the system allocator, and a warmed-up simulator must drive entire
//! replications — event scheduling, cancellation, pops, policy callbacks
//! (`view_at` + hook + `apply_orders`) — without a single allocation.
//!
//! This file deliberately holds ONE test: the counter is process-global,
//! and the default test harness runs sibling tests concurrently.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use churnbal::cluster::{
    ChurnModel, NetworkConfig, NodeConfig, SimOptions, Simulator, SystemConfig,
};
use churnbal::core::Lbp2;
use churnbal::desim::EventQueue;
use churnbal::stochastic::StreamFactory;

struct CountingAllocator;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// The safety obligations are exactly `System`'s — every call is forwarded
// verbatim; the counter has no effect on layout or pointers.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Runs `f` and returns how many allocations it performed.
fn count_allocs(f: impl FnOnce()) -> u64 {
    let before = allocations();
    f();
    allocations() - before
}

#[test]
fn warm_simulation_hot_path_does_not_allocate() {
    // --- 1. The event queue alone: schedule/cancel/pop churn in steady
    //        state reuses slots and heap capacity.
    let mut q = EventQueue::new();
    for round in 0..64u32 {
        let a = q.schedule_in(0.5, round);
        q.schedule_in(1.0, round);
        q.cancel(a);
        q.pop();
    }
    while q.pop().is_some() {}
    let queue_allocs = count_allocs(|| {
        for round in 0..512u32 {
            let a = q.schedule_in(0.5, round);
            q.schedule_in(1.0, round);
            assert!(q.cancel(a));
            q.pop();
        }
        while q.pop().is_some() {}
    });
    assert_eq!(
        queue_allocs, 0,
        "EventQueue schedule/cancel/pop allocated after warm-up"
    );

    // --- 2. Whole replications on the paper system under LBP-2 (start
    //        balancing + Eq. 8 failure compensation): after one warm-up
    //        run, an identical reset + run allocates nothing.
    let paper = SystemConfig::paper([100, 60]);
    assert_run_is_allocation_free(&paper, 11, "paper two-node");

    // --- 3. A cancel-heavy multi-node system: cascading churn redraws
    //        every pending failure event at each churn transition, and the
    //        multi-node Eq. 6-7 partition exercises the n-node order path.
    let cascading = SystemConfig::new(
        (0..8)
            .map(|_| NodeConfig::new(1.0, 0.05, 0.4, 25))
            .collect(),
        NetworkConfig::exponential(0.01),
    )
    .with_churn_model(ChurnModel::Cascading { amplification: 2.0 });
    assert_run_is_allocation_free(&cascading, 17, "cascading eight-node");
}

fn assert_run_is_allocation_free(config: &SystemConfig, seed: u64, label: &str) {
    let factory = StreamFactory::new(seed);
    let sub = factory.subfactory(0);
    let mut policy = Lbp2::new(1.0);
    let mut sim = Simulator::new(config, &sub, SimOptions::default());
    // Warm-up: reach the high-water marks of the event queue, the order
    // sink and every scratch buffer on the exact trajectory we re-run.
    let warm = sim.run_summary(&mut policy);
    assert!(warm.completed, "{label}: warm-up must complete");
    sim.reset(&sub);
    let (summary, steady_allocs) = {
        let before = allocations();
        let summary = sim.run_summary(&mut policy);
        (summary, allocations() - before)
    };
    assert_eq!(
        summary.completion_time, warm.completion_time,
        "{label}: reset must replay the warm-up trajectory"
    );
    assert!(
        summary.events > 100,
        "{label}: workload too trivial to prove anything"
    );
    assert_eq!(
        steady_allocs, 0,
        "{label}: a warmed-up replication performed {steady_allocs} allocations \
         (events: {})",
        summary.events
    );
}
