//! Integration: the three methods of the paper — regenerative model,
//! Monte-Carlo simulation, exact CTMC — must agree with each other on the
//! same dynamics, for both policies.

use churnbal::model::bridge;
use churnbal::prelude::*;

/// Mean of the LBP-1 dynamics: recursion vs Monte-Carlo confidence band.
#[test]
fn lbp1_model_mean_inside_mc_confidence_band() {
    let m0 = [40u32, 24];
    let config = SystemConfig::paper(m0);
    let params = model_params(&config);
    for (sender, l) in [(0usize, 0u32), (0, 14), (0, 40), (1, 10)] {
        let model = churnbal::model::mean::lbp1_mean(&params, m0, sender, l, WorkState::BOTH_UP);
        let (s, r) = (sender, 1 - sender);
        let mc = run_replications(
            &config,
            &|_| Lbp1::new(s, r, l),
            3000,
            77 + l as u64,
            0,
            SimOptions::default(),
        );
        let diff = (mc.mean() - model).abs();
        assert!(
            diff < 3.0 * mc.ci95(),
            "sender {sender} L={l}: model {model:.3} vs MC {:.3} ± {:.3}",
            mc.mean(),
            mc.ci95()
        );
    }
}

/// Mean of the LBP-2 dynamics: Monte-Carlo vs the exact CTMC (a result the
/// paper itself never had — it only compared MC to experiment).
#[test]
fn lbp2_mc_matches_exact_ctmc() {
    // Small workload: the exact chain's state space carries the full
    // multiset of in-flight transfers and grows combinatorially with the
    // task count (clamped Eq. 8 shipments produce many distinct sizes).
    let m0 = [8u32, 5];
    let config = SystemConfig::paper(m0);
    let params = model_params(&config);

    // Reconstruct the policy's actual orders for this system.
    let lbp2 = Lbp2::new(1.0);
    // Eq. 8 amounts: node 1 fails -> 3 to node 2; node 2 fails -> 9 to node 1
    // (validated against hand computation in churnbal-core tests).
    let lf = [3u32, 9];
    // Initial balancing for (18, 10): excess of node 1 over the speed share.
    let total = f64::from(m0[0] + m0[1]);
    let share0 = 1.08 / (1.08 + 1.86) * total;
    let excess0 = (f64::from(m0[0]) - share0).max(0.0);
    let l0 = excess0.round() as u32;

    let exact = bridge::lbp2_mean_exact(
        &params,
        m0,
        lf,
        Some((0, l0)),
        WorkState::BOTH_UP,
        5_000_000,
    );
    let mc = run_replications(&config, &|_| lbp2, 4000, 99, 0, SimOptions::default());
    let diff = (mc.mean() - exact).abs();
    assert!(
        diff < 3.0 * mc.ci95(),
        "LBP-2: exact CTMC {exact:.3} vs MC {:.3} ± {:.3}",
        mc.mean(),
        mc.ci95()
    );
}

/// Completion-time *distribution*: Eq. (5) CDF vs the Monte-Carlo ECDF
/// (Kolmogorov–Smirnov test at 0.1%).
#[test]
fn lbp1_cdf_matches_mc_ecdf() {
    let m0 = [25u32, 15];
    let config = SystemConfig::paper(m0);
    let params = model_params(&config);
    let l = 8u32;
    let times: Vec<f64> = (0..=400).map(|i| f64::from(i) * 0.5).collect();
    let cdf = lbp1_cdf(&params, m0, 0, l, WorkState::BOTH_UP, &times);

    let n = 4000u64;
    let mc = run_replications(
        &config,
        &|_| Lbp1::new(0, 1, l),
        n,
        1234,
        0,
        SimOptions::default(),
    );
    let ecdf = churnbal::stochastic::Ecdf::new(mc.completion_times.clone());
    let ks = ecdf.ks_distance(|t| cdf.eval(t));
    let crit = churnbal::stochastic::ecdf::ks_critical_value(n as usize, 0.001);
    assert!(
        ks < crit,
        "KS {ks:.4} exceeds the 0.1% critical value {crit:.4}"
    );
}

/// The same system described through the simulator's config and through
/// the model's parameter type must produce the same analytic answer as the
/// CTMC bridge built from either.
#[test]
fn recursion_vs_ctmc_on_paper_parameters() {
    let params = model_params(&SystemConfig::paper([12, 7]));
    for l in [0u32, 4, 12] {
        let rec = churnbal::model::mean::lbp1_mean(&params, [12, 7], 0, l, WorkState::BOTH_UP);
        let exact = bridge::lbp1_mean_exact(&params, [12, 7], 0, l, WorkState::BOTH_UP);
        assert!((rec - exact).abs() < 1e-7, "L={l}: {rec} vs {exact}");
    }
}

/// Mean from the CDF (survival integral) agrees with the direct mean —
/// ties Eqs. (4) and (5) together end to end.
#[test]
fn mean_consistency_between_eq4_and_eq5() {
    let params = model_params(&SystemConfig::paper([15, 9]));
    let times: Vec<f64> = (0..=1200).map(|i| f64::from(i) * 0.25).collect();
    let cdf = lbp1_cdf(&params, [15, 9], 0, 5, WorkState::BOTH_UP, &times);
    let mean_eq5 = mean_from_cdf(&cdf);
    let mean_eq4 = churnbal::model::mean::lbp1_mean(&params, [15, 9], 0, 5, WorkState::BOTH_UP);
    assert!(
        (mean_eq5 - mean_eq4).abs() < 0.05,
        "Eq.5 integral {mean_eq5} vs Eq.4 recursion {mean_eq4}"
    );
}
