//! # churnbal-desim
//!
//! A small, deterministic discrete-event simulation kernel.
//!
//! The cluster substrate (`churnbal-cluster`) drives every experiment of
//! the paper through this kernel: node failures, recoveries, task
//! completions and load-transfer arrivals are future events in a priority
//! queue; the engine pops them in time order and hands them back to the
//! caller.
//!
//! Design points:
//!
//! * **Determinism.** Ties in event time are broken by insertion sequence
//!   number (FIFO), so a simulation is a pure function of its inputs — a
//!   property the replication-level regression tests rely on.
//! * **Cancellation.** A scheduled event can be cancelled in O(log n) via
//!   its [`EventId`]: the queue is an indexed binary heap (slot map from id
//!   to heap position), so cancellation removes the entry outright — no
//!   tombstones, no scans. A node failure cancels the node's pending
//!   task-completion event, for example.
//! * **Allocation-free steady state.** Slots and heap capacity are
//!   recycled, so `schedule`/`cancel`/`pop` perform no heap allocation
//!   once the queue has reached its high-water mark, and
//!   [`EventQueue::clear`] resets for reuse without releasing capacity.
//! * **Monotone clock.** [`SimTime`] is a validated, totally ordered wrapper
//!   over `f64`; the engine panics loudly if asked to schedule in the past.
//! * **Pluggable backends.** The future-event list comes in two shapes
//!   behind one contract: the indexed binary heap ([`EventQueue`],
//!   O(log n), small fleets) and the calendar queue ([`CalendarQueue`],
//!   amortised O(1), huge fleets). [`QueueBackend`] selects one —
//!   `Auto` switches on fleet size at [`CALENDAR_AUTO_THRESHOLD`] — and
//!   [`BackendQueue`] dispatches without virtual calls. Both backends pop
//!   in identical `(time, seq)` order, so the choice never changes a
//!   trajectory, only the wall clock.
//!
//! The kernel is payload-generic: it knows nothing about nodes or tasks.

mod backend;
mod budget;
mod calendar;
mod engine;
mod time;

pub use backend::{BackendQueue, EventQueueBackend, QueueBackend, CALENDAR_AUTO_THRESHOLD};
pub use budget::{WallClockBudget, POLL_STRIDE};
pub use calendar::CalendarQueue;
pub use engine::{EventId, EventQueue, ScheduledEvent};
pub use time::SimTime;
