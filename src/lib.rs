//! # churnbal
//!
//! A Rust reproduction of **Dhakal, Hayat, Pezoa, Abdallah, Birdwell,
//! Chiasson — "Load Balancing in the Presence of Random Node Failure and
//! Recovery", IPDPS 2006** (DOI 10.1109/IPDPS.2006.1639293): load-balancing
//! policies for distributed systems whose nodes randomly fail and recover,
//! with random, load-dependent transfer delays.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`stochastic`] — reproducible PRNG streams, distributions, statistics;
//! * [`desim`] — the deterministic discrete-event kernel;
//! * [`ctmc`] — the finite CTMC engine (absorption analysis, uniformization);
//! * [`cluster`] — the distributed-system substrate (nodes, churn, network,
//!   Monte-Carlo engine, test-bed stand-in);
//! * [`core`] — the paper's policies: preemptive [`core::Lbp1`], reactive
//!   [`core::Lbp2`], baselines, optimisers;
//! * [`model`] — the regeneration-theory analytics: mean completion time
//!   (Eq. 4), completion-time CDF (Eq. 5), gain optimisation;
//! * [`lab`] — the declarative scenario & sweep subsystem: TOML-subset
//!   experiment specs, a registry of named presets (paper baselines,
//!   correlated failures, bursty/diurnal/flash-crowd arrivals, volunteer
//!   churn, …), a deterministic parallel sweep runner and the
//!   `churnbal-lab` CLI.
//!
//! ## Quickstart
//!
//! ```
//! use churnbal::prelude::*;
//!
//! // The paper's two-node system with 100 + 60 tasks.
//! let config = SystemConfig::paper([100, 60]);
//!
//! // Churn-aware preemptive balancing: model picks K*, sender, receiver.
//! let mut policy = Lbp1::optimal(&config);
//! let outcome = simulate(&config, &mut policy, 42, SimOptions::default());
//! assert!(outcome.completed);
//!
//! // The analytical mean for the same plan:
//! let params = model_params(&config);
//! let mean = churnbal::model::mean::lbp1_mean(
//!     &params, [100, 60], policy.sender(), policy.tasks(), WorkState::BOTH_UP);
//! assert!(mean > 0.0);
//! ```
//!
//! See `examples/` for full scenarios and `crates/bench` for the binaries
//! regenerating every table and figure of the paper.

pub use churnbal_cluster as cluster;
pub use churnbal_core as core;
pub use churnbal_ctmc as ctmc;
pub use churnbal_desim as desim;
pub use churnbal_lab as lab;
pub use churnbal_model as model;
pub use churnbal_stochastic as stochastic;

/// The most commonly used items in one import.
pub mod prelude {
    pub use churnbal_cluster::{
        run_replications, simulate, ArrivalKind, ArrivalProcess, ChurnModel, DelayLaw,
        ExternalArrival, NetworkConfig, NoBalancing, NodeConfig, Policy, QueueBackend, SimOptions,
        SystemConfig, Topology, TransferOrder,
    };
    pub use churnbal_core::{
        model_params, AnyPolicy, DynamicLbp1, EpisodicLbp2, InitialBalanceOnly, Lbp1, Lbp1Multi,
        Lbp2, PolicySpec, UponFailureOnly,
    };
    pub use churnbal_lab::{
        Axis, AxisParam, Experiment, ExperimentSpec, PolicyEntry, RowSink, RunOptions, Scenario,
    };
    // Legacy sweep entry points, kept exported until the wrappers go.
    #[allow(deprecated)]
    pub use churnbal_lab::{run_scenario, run_sweep};
    pub use churnbal_model::{
        lbp1_cdf, lbp1_moments, mean_from_cdf, optimize_lbp1, optimize_lbp1_deadline, DelayModel,
        TwoNodeParams, WorkState,
    };
    pub use churnbal_stochastic::{OnlineStats, StreamFactory, Xoshiro256pp};
}
