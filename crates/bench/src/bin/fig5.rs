//! Figure 5: cumulative distribution function of the overall completion
//! time under LBP-1, with and without node failure, for initial workloads
//! (50, 0) and (25, 50).
//!
//! The CDFs come from the Eq. (5) ODE system (`churnbal_model::cdf`),
//! using the gain that minimises the mean for each case; a Monte-Carlo
//! ECDF is printed alongside as validation (Kolmogorov–Smirnov distance
//! reported).

use churnbal_bench::presets::{mc_config, FIG5_WORKLOADS};
use churnbal_bench::table::{f2, TextTable};
use churnbal_bench::Args;
use churnbal_cluster::{run_replications, SimOptions};
use churnbal_core::{model_params, Lbp1};
use churnbal_model::optimize::optimize_lbp1;
use churnbal_model::{lbp1_cdf, WorkState};

fn main() {
    let args = Args::parse();
    let reps = args.reps_or(500);
    let times: Vec<f64> = (0..=125).map(|i| f64::from(i) * 2.0).collect();

    println!("Figure 5 — CDF of the overall completion time under LBP-1\n");
    for m0 in FIG5_WORKLOADS {
        let cfg = mc_config(m0);
        let params = model_params(&cfg);
        let nofail = params.without_failures();

        let opt_f = optimize_lbp1(&params, m0, WorkState::BOTH_UP);
        let opt_n = optimize_lbp1(&nofail, m0, WorkState::BOTH_UP);

        let cdf_f = lbp1_cdf(
            &params,
            m0,
            opt_f.sender,
            opt_f.tasks,
            WorkState::BOTH_UP,
            &times,
        );
        let cdf_n = lbp1_cdf(
            &nofail,
            m0,
            opt_n.sender,
            opt_n.tasks,
            WorkState::BOTH_UP,
            &times,
        );

        // Monte-Carlo validation of the failure-case CDF.
        let mc = run_replications(
            &cfg,
            &|_| Lbp1::new(opt_f.sender, opt_f.receiver, opt_f.tasks),
            reps,
            args.seed,
            args.threads,
            SimOptions::default(),
        );
        let ecdf = churnbal_stochastic::Ecdf::new(mc.completion_times.clone());
        let ks = ecdf.ks_distance(|t| cdf_f.eval(t));
        let crit = churnbal_stochastic::ecdf::ks_critical_value(reps as usize, 0.01);

        println!(
            "workload ({}, {}): K* = {:.2} (failure, sender node {}), K* = {:.2} (no failure)",
            m0[0],
            m0[1],
            opt_f.gain,
            opt_f.sender + 1,
            opt_n.gain
        );
        let mut t = TextTable::new([
            "t (s)",
            "P(T<=t) failure",
            "P(T<=t) no failure",
            "MC ECDF (failure)",
        ]);
        for (i, &time) in times.iter().enumerate().step_by(5) {
            t.row([
                f2(time),
                f2(cdf_f.values[i]),
                f2(cdf_n.values[i]),
                f2(ecdf.eval(time)),
            ]);
        }
        t.print();
        println!(
            "KS distance model-vs-MC: {ks:.4} (1% critical value at n={reps}: {crit:.4}) {}",
            if ks < crit { "OK" } else { "** exceeds **" }
        );
        // Shape check: failure curve lies below the no-failure curve.
        for i in 0..times.len() {
            assert!(
                cdf_f.values[i] <= cdf_n.values[i] + 1e-9,
                "failure CDF must lie below the no-failure CDF"
            );
        }
        println!("shape check OK: failure CDF is stochastically later\n");
    }
}
