//! Volunteer computing ("SETI@home"-style), the scenario that motivates
//! the paper's introduction: a mix of dedicated and non-dedicated nodes,
//! where the non-dedicated ones churn aggressively (owners reclaim their
//! desktops), balanced with the n-node LBP-2 machinery.
//!
//! ```text
//! cargo run --release --example volunteer_grid
//! ```
//!
//! The system comes from the scenario registry's `volunteer-grid` preset
//! (`churnbal-lab show volunteer-grid` prints it as TOML); the ablation
//! policies are built declaratively from [`PolicySpec`]s against the
//! preset's configuration — no duplicated config-building here.

use churnbal::lab::{registry, run_scenario, RunOptions};
use churnbal::prelude::*;

fn main() {
    let scenario = registry::get("volunteer-grid").expect("registered preset");
    let config = scenario.system_config().expect("preset is valid");
    let total = config.initial_total_tasks();
    println!(
        "volunteer grid: 2 dedicated + {} volunteer nodes, {total} tasks on the servers",
        config.num_nodes() - 2
    );
    println!(
        "aggregate speed: {:.1} task/s nominal, {:.2} task/s availability-weighted\n",
        config.nodes.iter().map(|n| n.service_rate).sum::<f64>(),
        config
            .nodes
            .iter()
            .map(|n| n.service_rate * n.availability())
            .sum::<f64>()
    );

    let opts = RunOptions {
        threads: 0,
        ..RunOptions::default()
    };
    let run = |policy: PolicySpec| {
        let mut sc = scenario.clone();
        sc.policy = policy;
        run_scenario(&sc, opts).expect("volunteer-grid variant runs")
    };
    let mut rows: Vec<(String, f64, f64, f64)> = Vec::new();
    // Keep everything on the dedicated servers:
    let none = run(PolicySpec::NoBalancing);
    rows.push((
        "no balancing (servers only)".into(),
        none.mean(),
        none.ci95(),
        0.0,
    ));
    // Ship excess to volunteers once, ignore churn afterwards:
    let init = run(PolicySpec::InitialBalanceOnly { gain: 1.0 });
    rows.push((
        "initial balancing only".into(),
        init.mean(),
        init.ci95(),
        0.0,
    ));
    // Full LBP-2 (the preset's own policy): initial balancing + Eq. 8
    // compensation at every failure.
    let lbp2 = run_scenario(&scenario, opts).expect("preset runs");
    rows.push((
        "LBP-2 (initial + Eq. 8)".into(),
        lbp2.mean(),
        lbp2.ci95(),
        lbp2.mean_tasks_shipped,
    ));

    println!(
        "{:<30} {:>12} {:>10} {:>16}",
        "policy", "mean (s)", "±95% CI", "tasks shipped"
    );
    for (name, mean, ci, shipped) in &rows {
        println!("{name:<30} {mean:>12.2} {ci:>10.2} {shipped:>16.1}");
    }

    let speedup = rows[0].1 / rows[2].1;
    println!("\nLBP-2 uses the volunteers despite churn: {speedup:.2}x faster than servers-only");
    assert!(rows[2].1 < rows[0].1, "balancing must beat hoarding");
    assert!(
        rows[2].1 <= rows[1].1 + 3.0,
        "failure compensation should not lose to initial-only"
    );
}
