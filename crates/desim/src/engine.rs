//! The future-event list: an indexed binary heap.
//!
//! The queue is a hand-rolled min-heap over `(time, seq)` with a slot map
//! from [`EventId`] to heap position, so every operation the simulation
//! hot path performs is cheap and allocation-free in steady state:
//!
//! * `schedule` — O(log n) sift-up, reusing freed slots and heap capacity;
//! * `pop` — O(log n) sift-down of the root;
//! * `cancel` — O(log n): the slot map locates the entry, a swap-remove
//!   plus one sift repairs the heap. No tombstones, so cancelled events
//!   occupy no memory and never slow later pops down.
//!
//! (The previous design — `BinaryHeap` plus a `HashSet` of tombstones —
//! needed an O(n) heap scan on every cancel just to keep the return value
//! truthful, and leaked tombstones until pops drained them.)
//!
//! Determinism contract: pops are ordered by `(time, seq)` where `seq` is
//! a monotone schedule counter, i.e. exactly FIFO among equal timestamps.
//! Slot reuse affects only the opaque ids, never the pop order, so runs
//! are bit-identical to the tombstone design's.

use crate::time::SimTime;

/// Opaque handle to a scheduled event, usable for cancellation.
///
/// Internally a `(generation, slot)` pair: slots are recycled once their
/// event fires or is cancelled, and the generation distinguishes the
/// current tenant from stale handles, keeping [`EventQueue::cancel`]'s
/// return value truthful without any scan. (A stale handle could collide
/// only after its slot's 32-bit generation wraps — 2^32 reuses of one
/// slot — which no simulation horizon approaches.)
/// Deliberately **not** `Ord`: the packed `(generation, slot)` bits carry
/// no meaningful order (a later event in a fresh slot can pack below an
/// earlier one in a reused slot), so the handle stays honestly opaque.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EventId(u64);

impl EventId {
    pub(crate) fn new(slot: u32, generation: u32) -> Self {
        Self((u64::from(generation) << 32) | u64::from(slot))
    }

    pub(crate) fn slot(self) -> usize {
        (self.0 & 0xFFFF_FFFF) as usize
    }

    pub(crate) fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// An event popped from the queue: when it fires and what it carries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// Firing time.
    pub time: SimTime,
    /// Handle it was scheduled under.
    pub id: EventId,
    /// User payload.
    pub payload: E,
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    slot: u32,
    payload: E,
}

impl<E> Entry<E> {
    /// Strict total order: earlier time first, FIFO (`seq`) among ties.
    fn sorts_before(&self, other: &Self) -> bool {
        match self.time.cmp(&other.time) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => self.seq < other.seq,
        }
    }
}

/// One slot-map cell: the current tenant's generation and, while an event
/// is pending in this slot, its heap position.
#[derive(Clone, Copy, Debug)]
struct Slot {
    generation: u32,
    pos: usize,
}

/// Sentinel heap position for a slot with no pending event.
const VACANT: usize = usize::MAX;

/// Deterministic future-event list with O(log n) scheduling, pop and
/// cancellation.
///
/// ```
/// use churnbal_desim::EventQueue;
/// let mut q = EventQueue::new();
/// q.schedule_in(2.0, "later");
/// let first = q.schedule_in(1.0, "sooner");
/// q.cancel(first);
/// let ev = q.pop().unwrap();
/// assert_eq!(ev.payload, "later");
/// assert_eq!(q.now().seconds(), 2.0);
/// ```
///
/// The queue owns the simulation clock: [`EventQueue::now`] is the time of
/// the most recently popped event (initially `0`), and scheduling earlier
/// than `now` panics.
pub struct EventQueue<E> {
    /// Binary min-heap over `(time, seq)`.
    heap: Vec<Entry<E>>,
    /// Slot map: `EventId::slot` → generation + heap position.
    slots: Vec<Slot>,
    /// Recycled slot indices.
    free: Vec<u32>,
    /// Monotone schedule counter — the FIFO tie-break, never recycled.
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live events still pending.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no live events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Empties the queue and resets the clock and schedule counter to the
    /// freshly-constructed state, keeping every allocation (heap capacity,
    /// slot map, free list) — the reset path of a reused simulator.
    /// Outstanding [`EventId`]s are invalidated ([`EventQueue::cancel`]
    /// returns `false` for them).
    pub fn clear(&mut self) {
        self.heap.clear();
        // Bump every generation so pre-clear ids go stale, then rebuild the
        // free list; slot order only affects id values, never pop order.
        self.free.clear();
        for (i, slot) in self.slots.iter_mut().enumerate() {
            slot.generation = slot.generation.wrapping_add(1);
            slot.pos = VACANT;
            self.free.push(i as u32);
        }
        self.next_seq = 0;
        self.now = SimTime::ZERO;
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current time.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule in the past ({at} < {})",
            self.now
        );
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                let s = u32::try_from(self.slots.len()).expect("more than 2^32 pending events");
                self.slots.push(Slot {
                    generation: 0,
                    pos: VACANT,
                });
                s
            }
        };
        let pos = self.heap.len();
        self.slots[slot as usize].pos = pos;
        let id = EventId::new(slot, self.slots[slot as usize].generation);
        self.heap.push(Entry {
            time: at,
            seq: self.next_seq,
            slot,
            payload,
        });
        self.next_seq += 1;
        self.sift_up(pos);
        id
    }

    /// Schedules `payload` after a non-negative delay from `now`.
    ///
    /// # Panics
    /// Panics if `delay` is negative or non-finite.
    pub fn schedule_in(&mut self, delay: f64, payload: E) -> EventId {
        assert!(
            delay.is_finite() && delay >= 0.0,
            "delay must be finite and >= 0, got {delay}"
        );
        self.schedule_at(self.now + delay, payload)
    }

    /// Cancels a pending event in O(log n). Returns `true` if the event was
    /// still pending (and is now guaranteed never to fire), `false` if it
    /// already fired, was already cancelled, or was never issued.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let Some(slot) = self.slots.get(id.slot()) else {
            return false; // never issued
        };
        if slot.generation != id.generation() || slot.pos == VACANT {
            return false; // fired, cancelled, or a stale pre-clear handle
        }
        let pos = slot.pos;
        self.remove_at(pos);
        self.release_slot(id.slot());
        true
    }

    /// Pops the next live event, advancing the clock to its firing time.
    /// Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        if self.heap.is_empty() {
            return None;
        }
        let entry = self.remove_root();
        let slot = entry.slot as usize;
        let id = EventId::new(entry.slot, self.slots[slot].generation);
        self.release_slot(slot);
        debug_assert!(entry.time >= self.now, "event queue went back in time");
        self.now = entry.time;
        Some(ScheduledEvent {
            time: entry.time,
            id,
            payload: entry.payload,
        })
    }

    /// Peeks at the firing time of the next live event without popping it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|e| e.time)
    }

    /// Marks a slot's event as gone: bumps the generation (staling the old
    /// id) and returns the slot to the free list.
    fn release_slot(&mut self, slot: usize) {
        self.slots[slot].generation = self.slots[slot].generation.wrapping_add(1);
        self.slots[slot].pos = VACANT;
        self.free.push(slot as u32);
    }

    /// Removes and returns the root entry (the pop hot path) using a
    /// hole-based sift: the root hole bubbles down along the min-child
    /// path to a leaf (one comparison per level — children against each
    /// other only), the heap's last entry drops into the hole, and a
    /// sift-up repairs the path. A classic top-down sift instead compares
    /// the transplanted entry against the smaller child at *every* level
    /// (two comparisons per level) even though a freshly detached leaf
    /// almost always sinks back to the bottom; the hole variant roughly
    /// halves the comparisons per pop. The final array layout is
    /// *identical* to the top-down sift's — both place each former
    /// min-child one level up and drop the transplant at the same position
    /// of the same path (the `(time, seq)` order is total, so there are no
    /// ties to break differently) — hence pop order, ids and every pinned
    /// digest are unchanged. Does not touch the removed entry's slot.
    fn remove_root(&mut self) -> Entry<E> {
        let last = self.heap.len() - 1;
        if last == 0 {
            return self.heap.pop().expect("heap is non-empty");
        }
        // Bubble the hole from the root to a leaf along min-children.
        let mut hole = 0usize;
        loop {
            let left = 2 * hole + 1;
            if left > last {
                break;
            }
            let right = left + 1;
            let child = if right <= last && self.heap[right].sorts_before(&self.heap[left]) {
                right
            } else {
                left
            };
            self.heap.swap(hole, child);
            self.slots[self.heap[hole].slot as usize].pos = hole;
            hole = child;
        }
        // The detached root now sits at `hole`; swap it with the last
        // entry, pop it off, and let the transplant rise to its place.
        self.heap.swap(hole, last);
        let entry = self.heap.pop().expect("heap is non-empty");
        if hole < self.heap.len() {
            self.sift_up(hole);
        }
        entry
    }

    /// Removes and returns the entry at heap position `pos`, repairing the
    /// heap with one swap-remove plus a single sift in the needed
    /// direction (the cancellation path; pops use the cheaper
    /// [`EventQueue::remove_root`]). Does not touch the removed entry's
    /// slot.
    fn remove_at(&mut self, pos: usize) -> Entry<E> {
        let last = self.heap.len() - 1;
        self.heap.swap(pos, last);
        let entry = self.heap.pop().expect("heap is non-empty");
        if pos < self.heap.len() {
            self.slots[self.heap[pos].slot as usize].pos = pos;
            // The transplanted entry may violate the heap property in
            // either direction relative to its new neighbourhood. At the
            // root (the pop path) only downward repair can apply.
            if pos == 0 {
                self.sift_down(0);
            } else {
                let moved = self.sift_up(pos);
                self.sift_down(moved);
            }
        }
        entry
    }

    /// Moves the entry at `pos` up until its parent sorts before it;
    /// returns its final position.
    fn sift_up(&mut self, mut pos: usize) -> usize {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if self.heap[pos].sorts_before(&self.heap[parent]) {
                self.heap.swap(pos, parent);
                self.slots[self.heap[pos].slot as usize].pos = pos;
                pos = parent;
            } else {
                break;
            }
        }
        self.slots[self.heap[pos].slot as usize].pos = pos;
        pos
    }

    /// Moves the entry at `pos` down until no child sorts before it.
    fn sift_down(&mut self, mut pos: usize) {
        loop {
            let left = 2 * pos + 1;
            if left >= self.heap.len() {
                break;
            }
            let right = left + 1;
            let smallest_child =
                if right < self.heap.len() && self.heap[right].sorts_before(&self.heap[left]) {
                    right
                } else {
                    left
                };
            if self.heap[smallest_child].sorts_before(&self.heap[pos]) {
                self.heap.swap(pos, smallest_child);
                self.slots[self.heap[pos].slot as usize].pos = pos;
                pos = smallest_child;
            } else {
                break;
            }
        }
        self.slots[self.heap[pos].slot as usize].pos = pos;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::new(3.0), "c");
        q.schedule_at(SimTime::new(1.0), "a");
        q.schedule_at(SimTime::new(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule_at(SimTime::new(1.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_in(5.0, ());
        q.schedule_in(1.0, ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::new(1.0));
        q.pop();
        assert_eq!(q.now(), SimTime::new(5.0));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_in(2.0, "first");
        q.pop();
        q.schedule_in(3.0, "second");
        let e = q.pop().expect("second event");
        assert_eq!(e.time, SimTime::new(5.0));
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut q = EventQueue::new();
        let keep = q.schedule_in(1.0, "keep");
        let drop = q.schedule_in(2.0, "drop");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(drop));
        assert_eq!(q.len(), 1);
        let fired: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(fired, vec!["keep"]);
        let _ = keep;
    }

    #[test]
    fn double_cancel_returns_false() {
        let mut q = EventQueue::new();
        let id = q.schedule_in(1.0, ());
        assert!(q.cancel(id));
        assert!(!q.cancel(id));
    }

    #[test]
    fn cancel_after_fire_returns_false() {
        let mut q = EventQueue::new();
        let id = q.schedule_in(1.0, ());
        q.pop();
        assert!(!q.cancel(id));
    }

    #[test]
    fn cancel_after_fire_stays_false_when_the_slot_is_reused() {
        // The fired event's slot is recycled by the next schedule; the
        // stale id must not cancel the new tenant (generation check).
        let mut q = EventQueue::new();
        let old = q.schedule_in(1.0, "old");
        q.pop();
        let new = q.schedule_in(2.0, "new");
        assert_eq!(old.slot(), new.slot(), "test assumes slot reuse");
        assert!(!q.cancel(old), "stale id cancelled the new tenant");
        assert_eq!(q.len(), 1);
        assert!(q.cancel(new));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_after_cancel_stays_false_when_the_slot_is_reused() {
        let mut q = EventQueue::new();
        let a = q.schedule_in(1.0, "a");
        assert!(q.cancel(a));
        let b = q.schedule_in(1.0, "b");
        assert_eq!(a.slot(), b.slot(), "test assumes slot reuse");
        assert!(!q.cancel(a), "double-cancel revived through slot reuse");
        assert_eq!(q.pop().map(|e| e.payload), Some("b"));
    }

    #[test]
    fn cancel_unknown_id_returns_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId::new(42, 0)));
    }

    #[test]
    fn cancel_mid_heap_preserves_order() {
        // Cancel an interior entry of a larger heap and check the survivors
        // still pop in exact (time, seq) order.
        let mut q = EventQueue::new();
        let ids: Vec<EventId> = (0..50)
            .map(|i| q.schedule_at(SimTime::new(f64::from((i * 7) % 13)), i))
            .collect();
        for &i in &[3usize, 17, 31, 44] {
            assert!(q.cancel(ids[i]));
        }
        let mut last = (SimTime::ZERO, 0u32);
        let mut seen = 0;
        while let Some(e) = q.pop() {
            assert!(
                e.time > last.0 || (e.time == last.0 && e.payload > last.1) || seen == 0,
                "order violated at {e:?}"
            );
            last = (e.time, e.payload);
            seen += 1;
        }
        assert_eq!(seen, 46);
    }

    #[test]
    fn peek_skips_nothing_and_matches_pop() {
        let mut q = EventQueue::new();
        let first = q.schedule_in(1.0, "x");
        q.schedule_in(2.0, "y");
        q.cancel(first);
        assert_eq!(q.peek_time(), Some(SimTime::new(2.0)));
        assert_eq!(q.pop().map(|e| e.payload), Some("y"));
    }

    #[test]
    fn exhausted_queue_returns_none() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.pop().is_none());
        assert!(q.peek_time().is_none());
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_in(5.0, ());
        q.pop();
        q.schedule_at(SimTime::new(1.0), ());
    }

    #[test]
    #[should_panic(expected = "delay must be finite")]
    fn negative_delay_panics() {
        let mut q = EventQueue::new();
        q.schedule_in(-1.0, ());
    }

    #[test]
    fn interleaved_schedule_and_pop_is_deterministic() {
        // Two identical runs produce identical traces.
        fn run() -> Vec<(u64, u32)> {
            let mut q = EventQueue::new();
            for i in 0..100u32 {
                q.schedule_in(f64::from(i % 7) * 0.5, i);
            }
            let mut out = Vec::new();
            while let Some(e) = q.pop() {
                out.push(((e.time.seconds() * 1000.0) as u64, e.payload));
                if e.payload % 13 == 0 {
                    q.schedule_in(0.25, 1000 + e.payload);
                }
                if e.payload > 999 {
                    break;
                }
            }
            out
        }
        assert_eq!(run(), run());
    }

    #[test]
    fn heavy_churn_len_bookkeeping() {
        let mut q = EventQueue::new();
        let ids: Vec<EventId> = (0..1000)
            .map(|i| q.schedule_in(f64::from(i) * 0.01, i))
            .collect();
        for id in ids.iter().step_by(2) {
            assert!(q.cancel(*id));
        }
        assert_eq!(q.len(), 500);
        let mut popped = 0;
        while q.pop().is_some() {
            popped += 1;
        }
        assert_eq!(popped, 500);
        assert!(q.is_empty());
    }

    #[test]
    fn clear_resets_to_the_fresh_state_and_stales_old_ids() {
        let mut q = EventQueue::new();
        let a = q.schedule_in(1.0, 1);
        q.schedule_in(2.0, 2);
        q.pop();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
        assert!(!q.cancel(a), "pre-clear id survived the clear");
        // Post-clear behaviour matches a fresh queue exactly.
        q.schedule_in(3.0, 30);
        q.schedule_in(1.0, 10);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![10, 30]);
        assert_eq!(q.now(), SimTime::new(3.0));
    }

    #[test]
    fn steady_state_churn_reuses_slots() {
        // A bounded schedule/cancel/pop loop must not grow the slot map
        // beyond its high-water mark of concurrently pending events.
        let mut q = EventQueue::new();
        for round in 0..200u32 {
            let a = q.schedule_in(0.5, round);
            q.schedule_in(1.0, round);
            q.cancel(a);
            q.pop();
        }
        assert!(q.is_empty());
        assert!(
            q.slots.len() <= 4,
            "slot map grew to {} despite steady-state churn",
            q.slots.len()
        );
    }
}
