//! # churnbal-model
//!
//! Regeneration-theory analytics for the two-node distributed system of
//! Dhakal et al. (IPDPS 2006), plus exact CTMC cross-checks.
//!
//! The paper characterises the *overall completion time* `T` of a workload
//! split over two nodes that randomly fail and recover, with a one-time
//! load transfer `L` subject to a random, load-dependent delay:
//!
//! * [`mean`] solves the difference equations of §2.1.1 (Eq. 4): for every
//!   lattice cell `(M1, M2)` the four work-state unknowns
//!   `µ^{k1,k2}_{M1,M2}` satisfy a linear system whose right-hand side
//!   involves already-computed cells — `µ = A⁻¹ b`, swept over the lattice.
//! * [`cdf`] integrates the ODE system of §2.1.2 (Eq. 5),
//!   `ṗ = A₁ p + B₁ u`, which is the backward Kolmogorov equation of the
//!   absorbing CTMC; we assemble the full sparse system and use classical
//!   RK4 steps.
//! * [`optimize`] finds the optimal LBP-1 gain `K` (equivalently the
//!   integer transfer size `L`) and the sender/receiver orientation, and
//!   the no-failure optimum used by LBP-2's initial balancing.
//! * [`bridge`] builds the *same* stochastic dynamics as an explicit
//!   [`churnbal_ctmc::Chain`], so every number the recursions produce can be
//!   cross-validated against an independent solver (Gauss–Seidel /
//!   uniformization). It also hosts the exact multi-node LBP-2 chain used
//!   to validate the simulator beyond the two-node setting.
//!
//! Work states follow the paper's convention: bit `i` set means node `i` is
//! up ("1"), clear means failed/recovering ("0").

pub mod bridge;
pub mod cdf;
pub mod cdf_lattice;
pub mod linalg;
pub mod mean;
pub mod multinode;
pub mod optimize;
pub mod rates;
pub mod state;
pub mod variance;

pub use cdf::{lbp1_cdf, mean_from_cdf, CompletionCdf};
pub use cdf_lattice::lbp1_cdf_lattice;
pub use mean::{HatTable, Lbp1Evaluator};
pub use multinode::{multinode_mean_exact, MultiNodeParams};
pub use optimize::{
    gain_sweep, optimize_lbp1, optimize_lbp1_deadline, DeadlineOptimum, Lbp1Optimum,
};
pub use rates::{DelayModel, TwoNodeParams};
pub use state::{StateSpace, WorkState};
pub use variance::{lbp1_moments, lbp2_moments, CompletionMoments};
