//! The `Strategy` trait and the combinators the suite uses.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// The stub collapses proptest's `ValueTree` machinery: a strategy is just
/// a deterministic sampler, with no shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// `.prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produce a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among type-erased strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from a non-empty list of arms.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.next_below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + rng.next_below(span as u64) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + rng.next_below(span as u64) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float range strategy");
                let u = rng.next_f64() as $t;
                let x = self.start + u * (self.end - self.start);
                // Guard against rounding landing exactly on the excluded end.
                if x >= self.end { self.start } else { x }
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let u = rng.next_f64() as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Full-domain generation for primitives (`any::<u64>()` and friends).
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy wrapper returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Generate any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: the suite's properties assume arithmetic on
        // the inputs stays meaningful.
        let x = f64::from_bits(rng.next_u64());
        if x.is_finite() {
            x
        } else {
            rng.next_f64() * 2e18 - 1e18
        }
    }
}
