//! Integration: the scenario lab and the bench harness share one code
//! path — `churnbal-lab run paper-fig3` reproduces the `fig3` binary's
//! Monte-Carlo column bit-exactly, for any thread count.

use churnbal::lab::{apply_axis, expand_grid, registry, AxisParam, ExperimentSpec, RunOptions};
use churnbal::prelude::*;
use churnbal::stochastic::digest_f64s;

/// The `fig3` binary's Monte-Carlo formula (its MC column now executes
/// through the lab's `paper-fig3` preset; this test pins the two paths to
/// the same bits at several gains and thread counts).
fn fig3_direct(k: f64, reps: u64, seed: u64, threads: usize) -> Vec<f64> {
    let cfg = SystemConfig::paper([100, 60]);
    run_replications(
        &cfg,
        &|_| Lbp1::with_gain(0, 1, 100, k),
        reps,
        seed,
        threads,
        SimOptions::default(),
    )
    .completion_times
}

#[test]
fn lab_paper_fig3_reproduces_the_fig3_bench_numbers() {
    let scenario = registry::get("paper-fig3").expect("registered");
    for k in [0.0, 0.35, 1.0] {
        let point = apply_axis(&scenario, AxisParam::Gain, k).expect("gain applies");
        let est = Experiment::new(ExperimentSpec::sweep(
            point,
            Vec::new(),
            RunOptions {
                reps: Some(40),
                threads: 2,
                ..RunOptions::default()
            },
        ))
        .estimate()
        .expect("preset runs");
        let direct = fig3_direct(k, 40, scenario.seed, 5);
        assert_eq!(
            est.completion_times, direct,
            "lab and bench disagree at K = {k}"
        );
    }
}

#[test]
fn lab_grid_matches_the_binary_gain_sequence() {
    let scenario = registry::get("paper-fig3").expect("registered");
    let grid = expand_grid(&scenario, &[]).expect("expands");
    let gains: Vec<f64> = grid.iter().map(|p| p.coords[0].1).collect();
    let expected: Vec<f64> = (0..=20).map(|i| f64::from(i) * 0.05).collect();
    assert_eq!(gains, expected, "the preset must carry the paper's grid");
    // The scenario's system is the paper's system, bit for bit.
    assert_eq!(
        scenario.system_config().expect("valid"),
        SystemConfig::paper([100, 60])
    );
}

#[test]
fn quick_reps_convention_matches_the_bench_harness() {
    // fig3 --quick runs max(500/10, 10) = 50 MC replications; the lab's
    // --quick must agree so the CI smoke gates compare like with like.
    let scenario = registry::get("paper-fig3").expect("registered");
    assert_eq!(scenario.quick_reps(), 50);
}

#[test]
fn rack_shocks_round_trips_through_toml() {
    // The rack-correlated-shock preset carries both new scenario tables —
    // `[churn] model = "rack-shocks"` and the hierarchical `[topology]` —
    // through the TOML codec: parse ∘ serialize must be the identity and
    // the serialization canonical.
    let scenario = registry::get("rack-shocks").expect("registered");
    let text = scenario.to_toml();
    let parsed = Scenario::from_toml(&text).expect("canonical TOML parses");
    assert_eq!(parsed, scenario, "TOML round trip must be the identity");
    assert_eq!(parsed.to_toml(), text, "serialization must be canonical");
}

#[test]
fn rack_shocks_sample_paths_are_pinned_and_backend_invariant() {
    // Shock draws are one-per-group regardless of hit outcome, so the
    // trajectories are a pure function of (scenario, reps, seed) — pinned
    // here, and identical through either event-queue backend.
    let scenario = registry::get("rack-shocks").expect("registered");
    let run = |backend: QueueBackend| {
        Experiment::new(ExperimentSpec::sweep(
            scenario.clone(),
            Vec::new(),
            RunOptions {
                reps: Some(16),
                threads: 3,
                backend,
                ..RunOptions::default()
            },
        ))
        .estimate()
        .expect("preset runs")
        .completion_times
    };
    let heap = run(QueueBackend::Heap);
    assert_eq!(heap, run(QueueBackend::Calendar), "backends diverged");
    assert_eq!(
        digest_f64s(&heap),
        PINNED_RACK_SHOCKS_DIGEST,
        "rack-shocks trajectories drifted (digest {:#018x})",
        digest_f64s(&heap)
    );
}

/// The pinned digest of `rack_shocks_sample_paths_are_pinned_and_backend_invariant`.
const PINNED_RACK_SHOCKS_DIGEST: u64 = 0x802b_f8a5_e79f_c3b8;

#[test]
fn sweeps_are_thread_count_invariant_end_to_end() {
    let scenario = registry::get("open-system").expect("registered");
    let run = |threads: usize| {
        Experiment::new(ExperimentSpec::sweep(
            scenario.clone(),
            vec![Axis {
                param: AxisParam::FailureScale,
                values: vec![0.0, 1.0, 3.0],
            }],
            RunOptions {
                reps: Some(8),
                threads,
                ..RunOptions::default()
            },
        ))
        .collect()
        .expect("sweep runs")
        .to_csv()
    };
    assert_eq!(run(1), run(4));
    assert_eq!(run(1), run(7));
}
