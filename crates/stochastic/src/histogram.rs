//! Fixed-bin histograms and empirical density estimates.
//!
//! Figure 1 of the paper shows empirically estimated pdfs of the per-task
//! processing time; Figure 2 the pdf of the per-task transfer delay. The
//! harness regenerates both with [`Histogram::density`].

/// Equal-width histogram over `[lo, hi)` with overflow/underflow counters.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins spanning `[lo, hi)`.
    ///
    /// # Panics
    /// Panics unless `lo < hi` and `bins > 0`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "need lo < hi");
        assert!(bins > 0, "need at least one bin");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Records one observation.
    pub fn add(&mut self, x: f64) {
        assert!(x.is_finite(), "non-finite observation: {x}");
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            // guard against floating rounding right at the top edge
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Records every observation of a slice.
    pub fn add_all(&mut self, xs: &[f64]) {
        for &x in xs {
            self.add(x);
        }
    }

    /// Number of bins.
    #[must_use]
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Bin width.
    #[must_use]
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Raw count of bin `i`.
    #[must_use]
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Total observations recorded (including under/overflow).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations that fell below `lo`.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Midpoint of bin `i`.
    #[must_use]
    pub fn center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.bin_width()
    }

    /// Density estimate for bin `i`: `count / (total · bin_width)`.
    /// Integrates to ≤ 1 (equality when nothing over/underflowed).
    #[must_use]
    pub fn density(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / (self.total as f64 * self.bin_width())
        }
    }

    /// `(center, density)` series for the whole histogram — what the Fig. 1/2
    /// harness prints.
    #[must_use]
    pub fn density_series(&self) -> Vec<(f64, f64)> {
        (0..self.bins())
            .map(|i| (self.center(i), self.density(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add(0.0);
        h.add(0.999);
        h.add(9.999);
        h.add(-0.1);
        h.add(10.0);
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(9), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn density_integrates_to_one_without_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 20);
        for i in 0..1000 {
            h.add((f64::from(i) + 0.5) / 1000.0);
        }
        let integral: f64 = (0..h.bins()).map(|i| h.density(i) * h.bin_width()).sum();
        assert!((integral - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exponential_histogram_tracks_pdf() {
        use crate::dist::{Exponential, Sample};
        use crate::rng::Xoshiro256pp;
        let d = Exponential::new(1.86);
        let mut rng = Xoshiro256pp::seed_from_u64(42);
        let mut h = Histogram::new(0.0, 5.0, 25);
        for _ in 0..200_000 {
            h.add(d.sample(&mut rng));
        }
        for i in 0..h.bins() {
            let x = h.center(i);
            assert!(
                (h.density(i) - d.pdf(x)).abs() < 0.05,
                "bin {i}: density {} vs pdf {}",
                h.density(i),
                d.pdf(x)
            );
        }
    }

    #[test]
    fn centers_are_midpoints() {
        let h = Histogram::new(1.0, 2.0, 4);
        assert!((h.center(0) - 1.125).abs() < 1e-12);
        assert!((h.center(3) - 1.875).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn rejects_inverted_range() {
        let _ = Histogram::new(2.0, 1.0, 4);
    }
}
