//! The policy hook interface.
//!
//! A load-balancing policy reacts to the events the paper's §3
//! load-balancing/failure layer reacts to: the synchronized start of the
//! computation, node failures (via the backup thread), recoveries, and
//! load arrivals. Each hook may order transfers; the engine executes them,
//! clamping to what the source queue actually holds (the backup system can
//! only ship tasks that exist).
//!
//! The interface is shaped for a zero-allocation, cache-friendly hot path:
//!
//! * [`SystemView`] exposes the node state as **structure-of-arrays
//!   slices** (`queue_len`, `up`, `service_rate`, …) *borrowed straight
//!   from the engine's own state* — building a view costs neither an
//!   allocation nor a copy, and policy scans (the Eq. 6–7 excess pass, the
//!   Eq. 8 speed/availability sums) stride over contiguous same-typed
//!   memory instead of hopping across interleaved per-node structs;
//! * hooks *append* to a reusable [`TransferOrder`] sink (cleared by the
//!   engine before each call) instead of returning a fresh `Vec`.
//!
//! The concrete policies of the paper (LBP-1, LBP-2) and the baselines are
//! implemented in `churnbal-core`; this crate only fixes the interface so
//! the substrate stays policy-agnostic.

use crate::topology::Topology;

/// Read-only snapshot of one node, as exchanged in the paper's state
/// packets (queue size, computational power, churn statistics).
///
/// The hot path stores node state as columns (see [`SystemView`]); this
/// row form is what [`SystemView::node`] assembles for callers that want
/// one node's fields together (diagnostics, tests).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeView {
    /// Node index.
    pub id: usize,
    /// Tasks currently queued.
    pub queue_len: u32,
    /// Whether the node is up.
    pub up: bool,
    /// Service rate `λ_d`.
    pub service_rate: f64,
    /// Failure rate `λ_f`.
    pub failure_rate: f64,
    /// Recovery rate `λ_r`.
    pub recovery_rate: f64,
}

impl NodeView {
    /// Long-run availability `λ_r/(λ_f+λ_r)`; 1 for reliable nodes.
    #[must_use]
    pub fn availability(&self) -> f64 {
        if self.failure_rate == 0.0 {
            1.0
        } else {
            self.recovery_rate / (self.failure_rate + self.recovery_rate)
        }
    }
}

/// Read-only system snapshot handed to policy hooks, in
/// structure-of-arrays layout: column `i` of every slice describes node
/// `i`. The engine lends its own state arrays — building one costs no
/// allocation and no per-node copy.
#[derive(Clone, Copy, Debug)]
pub struct SystemView<'a> {
    /// Simulation time of the triggering event (seconds).
    pub time: f64,
    /// Tasks currently queued, per node.
    pub queue_len: &'a [u32],
    /// Up/down state, per node.
    pub up: &'a [bool],
    /// Service rates `λ_d`, per node.
    pub service_rate: &'a [f64],
    /// Failure rates `λ_f`, per node.
    pub failure_rate: &'a [f64],
    /// Recovery rates `λ_r`, per node.
    pub recovery_rate: &'a [f64],
    /// Mean network delay per task (the policies of the paper know the
    /// channel estimate from probing, §4).
    pub delay_per_task: f64,
    /// Tasks currently in transit between nodes.
    pub in_transit: u32,
    /// Cumulative tasks dead-lettered by the transfer channel so far
    /// (always 0 under [`crate::ChannelModel::Reliable`]) — a policy can
    /// read how much shipped work the fabric has eaten.
    pub tasks_lost: u64,
    /// The interconnect graph, when the system is topology-constrained.
    /// `None` means the paper's complete graph: any node may send to any
    /// other, and policies scan globally. When present, transfer orders
    /// must follow edges and policies should scan
    /// [`Topology::neighbors`]-locally (O(degree) per event).
    pub topology: Option<&'a Topology>,
}

impl SystemView<'_> {
    /// Number of nodes in the system.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queue_len.len()
    }

    /// True for a zero-node view (never produced by the engine).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue_len.is_empty()
    }

    /// Assembles the row form of node `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn node(&self, i: usize) -> NodeView {
        NodeView {
            id: i,
            queue_len: self.queue_len[i],
            up: self.up[i],
            service_rate: self.service_rate[i],
            failure_rate: self.failure_rate[i],
            recovery_rate: self.recovery_rate[i],
        }
    }

    /// Long-run availability `λ_r/(λ_f+λ_r)` of node `i`; 1 for reliable
    /// nodes.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn availability(&self, i: usize) -> f64 {
        if self.failure_rate[i] == 0.0 {
            1.0
        } else {
            self.recovery_rate[i] / (self.failure_rate[i] + self.recovery_rate[i])
        }
    }

    /// Sum of all queued tasks.
    #[must_use]
    pub fn total_queued(&self) -> u32 {
        self.queue_len.iter().sum()
    }

    /// Sum of service rates, `Σ λ_d` (the denominator of Eqs. 6–8).
    #[must_use]
    pub fn total_service_rate(&self) -> f64 {
        self.service_rate.iter().sum()
    }

    /// Node `i`'s neighbors, in ascending index order: the CSR adjacency
    /// row under a topology, every other node on the (implicit) complete
    /// graph. This is the scan set a topology-aware policy iterates —
    /// O(degree) per event instead of O(n) — and it indexes straight into
    /// the SoA columns (`view.queue_len[j]`, `view.service_rate[j]`, …).
    ///
    /// The iterator allocates nothing and is `Clone`, so a policy can run
    /// a totals pass and an emission pass over the same neighborhood.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn neighbors(&self, i: usize) -> Neighbors<'_> {
        match self.topology {
            Some(topo) => Neighbors::Edges(topo.neighbors(i).iter()),
            None => {
                assert!(i < self.len(), "node {i} out of range");
                Neighbors::Complete {
                    next: 0,
                    n: self.len(),
                    skip: i,
                }
            }
        }
    }

    /// Number of neighbors of node `i` (`n − 1` on the complete graph).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn degree(&self, i: usize) -> usize {
        match self.topology {
            Some(topo) => topo.degree(i),
            None => {
                assert!(i < self.len(), "node {i} out of range");
                self.len() - 1
            }
        }
    }
}

/// Iterator over one node's neighbor indices under a [`SystemView`] —
/// see [`SystemView::neighbors`]. Yields ascending `usize` node indices.
#[derive(Clone, Debug)]
pub enum Neighbors<'a> {
    /// Explicit CSR adjacency row (already sorted ascending).
    Edges(std::slice::Iter<'a, u32>),
    /// Complete graph: every node in `0..n` except `skip`.
    Complete {
        /// Next candidate index.
        next: usize,
        /// Node count.
        n: usize,
        /// The node whose neighborhood this is (never yielded).
        skip: usize,
    },
}

impl Iterator for Neighbors<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self {
            Neighbors::Edges(row) => row.next().map(|&u| u as usize),
            Neighbors::Complete { next, n, skip } => {
                if *next == *skip {
                    *next += 1;
                }
                if *next >= *n {
                    None
                } else {
                    let v = *next;
                    *next += 1;
                    Some(v)
                }
            }
        }
    }
}

/// Owned structure-of-arrays node state — the builder behind
/// [`SystemSnapshot::view`] for code that needs a [`SystemView`] *outside*
/// a running engine: tests, diagnostics, and offline policy evaluation.
#[derive(Clone, Debug, Default)]
pub struct SystemSnapshot {
    /// Simulation time the snapshot represents.
    pub time: f64,
    /// Mean network delay per task.
    pub delay_per_task: f64,
    /// Tasks in transit.
    pub in_transit: u32,
    /// Cumulative tasks dead-lettered by the transfer channel.
    pub tasks_lost: u64,
    queue_len: Vec<u32>,
    up: Vec<bool>,
    service_rate: Vec<f64>,
    failure_rate: Vec<f64>,
    recovery_rate: Vec<f64>,
    topology: Option<Topology>,
}

impl SystemSnapshot {
    /// Builds the column form from per-node rows (`id` fields are
    /// ignored; order defines the node indices).
    #[must_use]
    pub fn from_nodes(nodes: &[NodeView]) -> Self {
        Self {
            time: 0.0,
            delay_per_task: 0.0,
            in_transit: 0,
            tasks_lost: 0,
            queue_len: nodes.iter().map(|n| n.queue_len).collect(),
            up: nodes.iter().map(|n| n.up).collect(),
            service_rate: nodes.iter().map(|n| n.service_rate).collect(),
            failure_rate: nodes.iter().map(|n| n.failure_rate).collect(),
            recovery_rate: nodes.iter().map(|n| n.recovery_rate).collect(),
            topology: None,
        }
    }

    /// Sets the ambient fields in builder style.
    #[must_use]
    pub fn with_context(mut self, time: f64, delay_per_task: f64, in_transit: u32) -> Self {
        self.time = time;
        self.delay_per_task = delay_per_task;
        self.in_transit = in_transit;
        self
    }

    /// Constrains the snapshot to a topology, in builder style.
    ///
    /// # Panics
    /// Panics if the topology's node count differs from the snapshot's.
    #[must_use]
    pub fn with_topology(mut self, topology: Topology) -> Self {
        assert_eq!(
            topology.num_nodes(),
            self.queue_len.len(),
            "topology node count must match the snapshot"
        );
        self.topology = Some(topology);
        self
    }

    /// Borrows the snapshot as the view policies consume.
    #[must_use]
    pub fn view(&self) -> SystemView<'_> {
        SystemView {
            time: self.time,
            queue_len: &self.queue_len,
            up: &self.up,
            service_rate: &self.service_rate,
            failure_rate: &self.failure_rate,
            recovery_rate: &self.recovery_rate,
            delay_per_task: self.delay_per_task,
            in_transit: self.in_transit,
            tasks_lost: self.tasks_lost,
            topology: self.topology.as_ref(),
        }
    }
}

/// A policy-ordered load transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransferOrder {
    /// Source node (must differ from `to`).
    pub from: usize,
    /// Destination node.
    pub to: usize,
    /// Requested number of tasks (the engine clamps to the source queue).
    pub tasks: u32,
}

/// A load-balancing policy: stateful, invoked at the §3 hook points.
///
/// Hooks push the transfers to initiate *now* into `orders` — a reusable
/// sink the engine clears before every call; leaving it empty means no
/// action. Default implementations do nothing, so a policy only overrides
/// the hooks it uses (LBP-1 only `on_start`, LBP-2 both `on_start` and
/// `on_failure`).
pub trait Policy {
    /// Human-readable policy name (used in harness output).
    fn name(&self) -> &str;

    /// Called once at `t = 0` when all nodes are up and hold their initial
    /// workloads.
    fn on_start(&mut self, view: &SystemView<'_>, orders: &mut Vec<TransferOrder>) {
        let _ = (view, orders);
    }

    /// Called at every failure instant of `node` (the node is already
    /// marked down; its backup system can still send).
    fn on_failure(&mut self, node: usize, view: &SystemView<'_>, orders: &mut Vec<TransferOrder>) {
        let _ = (node, view, orders);
    }

    /// Called at every recovery instant of `node`.
    fn on_recovery(&mut self, node: usize, view: &SystemView<'_>, orders: &mut Vec<TransferOrder>) {
        let _ = (node, view, orders);
    }

    /// Called when a transferred batch of `tasks` arrives at `node`.
    fn on_transfer_arrival(
        &mut self,
        node: usize,
        tasks: u32,
        view: &SystemView<'_>,
        orders: &mut Vec<TransferOrder>,
    ) {
        let _ = (node, tasks, view, orders);
    }

    /// Called when an external batch of `tasks` arrives at `node`
    /// (dynamic-workload extension; the paper's conclusion suggests
    /// re-running a balancing episode here).
    fn on_external_arrival(
        &mut self,
        node: usize,
        tasks: u32,
        view: &SystemView<'_>,
        orders: &mut Vec<TransferOrder>,
    ) {
        let _ = (node, tasks, view, orders);
    }
}

/// The do-nothing baseline: every node keeps its initial workload.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoBalancing;

impl Policy for NoBalancing {
    fn name(&self) -> &str {
        "no-balancing"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> SystemSnapshot {
        SystemSnapshot::from_nodes(&[
            NodeView {
                id: 0,
                queue_len: 100,
                up: true,
                service_rate: 1.08,
                failure_rate: 0.05,
                recovery_rate: 0.1,
            },
            NodeView {
                id: 1,
                queue_len: 60,
                up: true,
                service_rate: 1.86,
                failure_rate: 0.05,
                recovery_rate: 0.05,
            },
        ])
        .with_context(0.0, 0.02, 0)
    }

    #[test]
    fn view_aggregates() {
        let snap = snapshot();
        let v = snap.view();
        assert_eq!(v.len(), 2);
        assert!(!v.is_empty());
        assert_eq!(v.total_queued(), 160);
        assert!((v.total_service_rate() - 2.94).abs() < 1e-12);
        assert!((v.availability(0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn node_round_trips_the_row_form() {
        let snap = snapshot();
        let v = snap.view();
        let n1 = v.node(1);
        assert_eq!(n1.id, 1);
        assert_eq!(n1.queue_len, 60);
        assert!(n1.up);
        assert_eq!(n1.service_rate, 1.86);
        // The row's availability agrees with the column computation.
        assert_eq!(n1.availability(), v.availability(1));
    }

    #[test]
    fn reliable_nodes_have_unit_availability() {
        let snap = SystemSnapshot::from_nodes(&[NodeView {
            id: 0,
            queue_len: 1,
            up: true,
            service_rate: 1.0,
            failure_rate: 0.0,
            recovery_rate: 0.0,
        }]);
        assert_eq!(snap.view().availability(0), 1.0);
        assert_eq!(snap.view().node(0).availability(), 1.0);
    }

    #[test]
    fn no_balancing_never_acts() {
        let mut p = NoBalancing;
        let snap = snapshot();
        let v = snap.view();
        let mut sink = Vec::new();
        p.on_start(&v, &mut sink);
        p.on_failure(0, &v, &mut sink);
        p.on_recovery(1, &v, &mut sink);
        p.on_transfer_arrival(0, 5, &v, &mut sink);
        p.on_external_arrival(1, 5, &v, &mut sink);
        assert!(sink.is_empty());
        assert_eq!(p.name(), "no-balancing");
    }

    fn uniform_nodes(n: usize) -> Vec<NodeView> {
        (0..n)
            .map(|id| NodeView {
                id,
                queue_len: 10,
                up: true,
                service_rate: 1.0,
                failure_rate: 0.01,
                recovery_rate: 0.1,
            })
            .collect()
    }

    #[test]
    fn complete_neighbors_skip_self_and_cover_everyone_else() {
        let snap = SystemSnapshot::from_nodes(&uniform_nodes(5));
        let v = snap.view();
        for i in 0..5 {
            let got: Vec<usize> = v.neighbors(i).collect();
            let want: Vec<usize> = (0..5).filter(|&j| j != i).collect();
            assert_eq!(got, want, "node {i}");
            assert_eq!(v.degree(i), 4);
        }
    }

    #[test]
    fn topology_neighbors_follow_the_csr_rows() {
        let topo = Topology::ring(5).expect("valid ring");
        let snap = SystemSnapshot::from_nodes(&uniform_nodes(5)).with_topology(topo);
        let v = snap.view();
        let got: Vec<usize> = v.neighbors(0).collect();
        assert_eq!(got, vec![1, 4]);
        assert_eq!(v.degree(0), 2);
        let got: Vec<usize> = v.neighbors(2).collect();
        assert_eq!(got, vec![1, 3]);
    }

    #[test]
    fn neighbors_iterator_is_cloneable_for_two_pass_scans() {
        let snap = SystemSnapshot::from_nodes(&uniform_nodes(4));
        let v = snap.view();
        let first = v.neighbors(2);
        let second = first.clone();
        assert_eq!(first.collect::<Vec<_>>(), second.collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn complete_neighbors_reject_out_of_range_nodes() {
        let snap = SystemSnapshot::from_nodes(&uniform_nodes(3));
        let _ = snap.view().neighbors(3);
    }
}
