//! The `churnbal-lab` command-line interface.
//!
//! ```text
//! churnbal-lab list
//! churnbal-lab show <scenario>
//! churnbal-lab run   <scenario|file.toml> [--quick] [--reps N] [--seed S]
//!                    [--threads T] [--chunk C] [--format table|csv|jsonl] [--out PATH]
//! churnbal-lab sweep <scenario|file.toml> [--axis param=v1,v2,... | param=lo:hi:step]...
//!                    [--quick] [--reps N] [--seed S] [--threads T] [--chunk C]
//!                    [--format csv|jsonl] [--out PATH]
//! ```
//!
//! `run` executes a scenario including its baked-in axes (so
//! `run paper-fig3` regenerates the whole Fig. 3 gain sweep); `sweep`
//! additionally grid-expands `--axis` specifications on top. The whole
//! `(grid point, replication)` space runs on one shared worker pool
//! (`--threads`), which claims `--chunk` tasks per grab. All output is
//! deterministic: bit-identical for any `--threads` and `--chunk` value.

use crate::registry;
use crate::scenario::Scenario;
use crate::sweep::{
    csv_header, csv_row, jsonl_row, run_sweep, run_sweep_streaming, Axis, AxisParam, RunOptions,
    SweepResult,
};

const USAGE: &str = "usage: churnbal-lab <command>\n\
\n\
commands:\n\
  list                       list registered scenarios\n\
  show <scenario>            print a scenario as TOML\n\
  run <scenario|file.toml>   run a scenario (including its baked-in axes)\n\
  sweep <scenario|file.toml> grid-expand and run; add axes with --axis\n\
\n\
options (run/sweep):\n\
  --axis param=v1,v2,...     sweep axis, explicit values (sweep only)\n\
  --axis param=lo:hi:step    sweep axis, inclusive range (sweep only)\n\
  --quick                    a tenth of the replications (at least 10)\n\
  --reps N                   replication override\n\
  --seed S                   master-seed override\n\
  --threads T                worker threads for the whole sweep (0 = auto)\n\
  --chunk C                  tasks claimed per scheduler grab (0 = auto)\n\
  --format F                 table (run default) | csv (sweep default) | jsonl\n\
  --out PATH                 write the output to PATH instead of stdout\n";

/// Executes a full CLI invocation, returning what should go to stdout.
///
/// # Errors
/// Returns the message to print on stderr (exit code 2).
pub fn run(args: &[String]) -> Result<String, String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        None | Some("help" | "--help" | "-h") => Ok(USAGE.to_string()),
        Some("list") => cmd_list(),
        Some("show") => {
            let name = it
                .next()
                .ok_or("show: missing scenario name\n\ntry: churnbal-lab list")?;
            cmd_show(name)
        }
        Some("run") => {
            let (scenario, opts) = parse_common(&mut it, false)?;
            cmd_run(&scenario, &opts)
        }
        Some("sweep") => {
            let (scenario, opts) = parse_common(&mut it, true)?;
            cmd_sweep(&scenario, &opts)
        }
        Some(other) => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
}

#[derive(Clone, Debug, Default)]
struct CliOptions {
    axes: Vec<Axis>,
    run: RunOptions,
    format: Option<String>,
    out: Option<String>,
}

fn parse_common<'a>(
    it: &mut impl Iterator<Item = &'a String>,
    allow_axes: bool,
) -> Result<(Scenario, CliOptions), String> {
    let name = it
        .next()
        .ok_or("missing scenario name or file\n\ntry: churnbal-lab list")?;
    let scenario = load_scenario(name)?;
    let mut opts = CliOptions::default();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--axis" if allow_axes => {
                let spec = it.next().ok_or("--axis needs `param=values`")?;
                opts.axes.push(parse_axis(spec)?);
            }
            "--axis" => return Err("--axis is only valid for `sweep`".into()),
            "--quick" => opts.run.quick = true,
            "--reps" => {
                let v = it.next().ok_or("--reps needs a value")?;
                opts.run.reps = Some(
                    v.parse()
                        .map_err(|_| format!("--reps: expected an integer, got `{v}`"))?,
                );
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                opts.run.seed = Some(
                    v.parse()
                        .map_err(|_| format!("--seed: expected an integer, got `{v}`"))?,
                );
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                opts.run.threads = v
                    .parse()
                    .map_err(|_| format!("--threads: expected an integer, got `{v}`"))?;
            }
            "--chunk" => {
                let v = it.next().ok_or("--chunk needs a value")?;
                opts.run.chunk = v
                    .parse()
                    .map_err(|_| format!("--chunk: expected an integer, got `{v}`"))?;
            }
            "--format" => {
                let v = it.next().ok_or("--format needs a value")?;
                if !["table", "csv", "jsonl"].contains(&v.as_str()) {
                    return Err(format!("--format: expected table | csv | jsonl, got `{v}`"));
                }
                opts.format = Some(v.clone());
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a path")?;
                opts.out = Some(v.clone());
            }
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
    }
    Ok((scenario, opts))
}

/// Resolves a scenario by registry name first, then as a TOML file path.
fn load_scenario(name: &str) -> Result<Scenario, String> {
    if let Some(sc) = registry::get(name) {
        return Ok(sc);
    }
    if std::path::Path::new(name).exists() {
        let text = std::fs::read_to_string(name)
            .map_err(|e| format!("cannot read scenario file `{name}`: {e}"))?;
        let sc = Scenario::from_toml(&text).map_err(|e| format!("{name}: {e}"))?;
        sc.validate().map_err(|e| format!("{name}: {e}"))?;
        return Ok(sc);
    }
    Err(format!(
        "unknown scenario `{name}` and no such file; registered scenarios:\n  {}",
        registry::names().join("\n  ")
    ))
}

/// Parses `param=v1,v2,...` or `param=lo:hi:step` (inclusive range).
fn parse_axis(spec: &str) -> Result<Axis, String> {
    let Some((key, values)) = spec.split_once('=') else {
        return Err(format!("--axis: expected `param=values`, got `{spec}`"));
    };
    let param = AxisParam::parse(key.trim())?;
    let values = values.trim();
    let parse_f64 = |s: &str| -> Result<f64, String> {
        s.trim()
            .parse::<f64>()
            .map_err(|_| format!("--axis {key}: `{s}` is not a number"))
    };
    let vals: Vec<f64> = if values.contains(':') {
        let parts: Vec<&str> = values.split(':').collect();
        if parts.len() != 3 {
            return Err(format!(
                "--axis {key}: ranges are `lo:hi:step`, got `{values}`"
            ));
        }
        let (lo, hi, step) = (
            parse_f64(parts[0])?,
            parse_f64(parts[1])?,
            parse_f64(parts[2])?,
        );
        if !(step.is_finite() && step > 0.0) || hi < lo {
            return Err(format!(
                "--axis {key}: need lo <= hi and step > 0 in `{values}`"
            ));
        }
        // Multiply rather than accumulate so 0:1:0.05 hits 1.0 exactly.
        let n = ((hi - lo) / step + 1e-9).floor() as usize;
        (0..=n).map(|i| lo + i as f64 * step).collect()
    } else {
        values
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(parse_f64)
            .collect::<Result<_, _>>()?
    };
    let axis = Axis {
        param,
        values: vals,
    };
    axis.validate()?;
    Ok(axis)
}

fn cmd_list() -> Result<String, String> {
    let mut out = String::new();
    let scenarios = registry::all();
    let width = scenarios.iter().map(|s| s.name.len()).max().unwrap_or(0);
    for sc in scenarios {
        let axes = if sc.axes.is_empty() {
            String::new()
        } else {
            let keys: Vec<&str> = sc.axes.iter().map(|a| a.param.key()).collect();
            format!(" [axes: {}]", keys.join(", "))
        };
        out.push_str(&format!(
            "{:width$}  {}{}\n",
            sc.name,
            sc.description,
            axes,
            width = width
        ));
    }
    Ok(out)
}

fn cmd_show(name: &str) -> Result<String, String> {
    Ok(load_scenario(name)?.to_toml())
}

fn render(result: &SweepResult, format: &str) -> String {
    match format {
        "csv" => result.to_csv(),
        "jsonl" => result.to_jsonl(),
        _ => render_table(result),
    }
}

fn render_table(result: &SweepResult) -> String {
    let mut header: Vec<String> = result.axes.iter().map(|a| a.key().to_string()).collect();
    header.extend(
        [
            "mean (s)",
            "±95% CI",
            "sd",
            "failures",
            "shipped",
            "incomplete",
        ]
        .map(str::to_string),
    );
    // Display-only rounding: the machine formats keep exact values.
    let pretty = |v: f64| {
        let s = format!("{v:.6}");
        let s = s.trim_end_matches('0').trim_end_matches('.');
        if s.is_empty() || s == "-" {
            "0".to_string()
        } else {
            s.to_string()
        }
    };
    let mut rows: Vec<Vec<String>> = Vec::new();
    for r in &result.rows {
        let mut row: Vec<String> = r.coords.iter().map(|&(_, v)| pretty(v)).collect();
        row.extend([
            format!("{:.2}", r.mean_completion),
            format!("{:.2}", r.ci95),
            format!("{:.2}", r.sd_completion),
            format!("{:.2} ± {:.2}", r.mean_failures, r.sd_failures),
            format!("{:.1} ± {:.1}", r.mean_tasks_shipped, r.sd_tasks_shipped),
            r.incomplete.to_string(),
        ]);
        rows.push(row);
    }
    let cols = header.len();
    let mut width = vec![0usize; cols];
    for (i, h) in header.iter().enumerate() {
        width[i] = h.len();
    }
    for row in &rows {
        for (i, c) in row.iter().enumerate() {
            width[i] = width[i].max(c.len());
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{c:>w$}", w = width[i]));
        }
        line.push('\n');
        line
    };
    let mut out = fmt_row(&header);
    out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in &rows {
        out.push_str(&fmt_row(row));
    }
    out
}

fn deliver(text: String, opts: &CliOptions, preamble: String) -> Result<String, String> {
    match &opts.out {
        None => Ok(format!("{preamble}{text}")),
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            Ok(format!(
                "{preamble}wrote {} lines to {path}\n",
                text.lines().count()
            ))
        }
    }
}

/// Runs a sweep in streaming mode: each row is rendered and written (to
/// the `--out` file or the in-memory stdout buffer) as its grid point
/// finishes, so a long sweep's partial results are on disk while later
/// points still run. The per-row renderers are shared with
/// [`SweepResult::to_csv`]/[`to_jsonl`](SweepResult::to_jsonl), so the
/// bytes are identical to the buffered path's.
fn stream_sweep(scenario: &Scenario, opts: &CliOptions, jsonl: bool) -> Result<String, String> {
    use std::io::Write;
    let mut file = match &opts.out {
        Some(path) => Some(std::io::BufWriter::new(
            std::fs::File::create(path).map_err(|e| format!("cannot write `{path}`: {e}"))?,
        )),
        None => None,
    };
    let mut buf = String::new();
    let mut lines = 0usize;
    let mut first = true;
    let name = scenario.name.clone();
    run_sweep_streaming(scenario, &opts.axes, opts.run, |row| {
        let mut chunk = String::new();
        if first && !jsonl {
            let axes: Vec<AxisParam> = row.coords.iter().map(|&(a, _)| a).collect();
            chunk.push_str(&csv_header(&axes));
        }
        first = false;
        chunk.push_str(&if jsonl {
            jsonl_row(&name, &row)
        } else {
            csv_row(&name, &row)
        });
        lines += chunk.lines().count();
        match &mut file {
            Some(f) => f
                .write_all(chunk.as_bytes())
                .and_then(|()| f.flush())
                .map_err(|e| format!("cannot write sweep output: {e}")),
            None => {
                buf.push_str(&chunk);
                Ok(())
            }
        }
    })?;
    match &opts.out {
        Some(path) => Ok(format!("wrote {lines} lines to {path}\n")),
        None => Ok(buf),
    }
}

fn cmd_run(scenario: &Scenario, opts: &CliOptions) -> Result<String, String> {
    let format = opts.format.as_deref().unwrap_or("table");
    if format != "table" {
        return stream_sweep(scenario, opts, format == "jsonl");
    }
    let result = run_sweep(scenario, &opts.axes, opts.run)?;
    let reps = opts.run.reps.unwrap_or(if opts.run.quick {
        scenario.quick_reps()
    } else {
        scenario.reps
    });
    let preamble = format!(
        "{}: {}\n{} point(s), {} replications each, seed {}\n\n",
        scenario.name,
        scenario.description,
        result.rows.len(),
        reps,
        opts.run.seed.unwrap_or(scenario.seed),
    );
    deliver(render(&result, format), opts, preamble)
}

fn cmd_sweep(scenario: &Scenario, opts: &CliOptions) -> Result<String, String> {
    let format = opts.format.as_deref().unwrap_or("csv");
    if format != "table" {
        return stream_sweep(scenario, opts, format == "jsonl");
    }
    let result = run_sweep(scenario, &opts.axes, opts.run)?;
    deliver(render(&result, format), opts, String::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(args: &[&str]) -> Result<String, String> {
        run(&args.iter().map(|s| (*s).to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn list_names_every_preset() {
        let out = call(&["list"]).expect("list works");
        for name in registry::names() {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
    }

    #[test]
    fn show_round_trips_through_the_parser() {
        let out = call(&["show", "flash-crowd"]).expect("show works");
        let sc = Scenario::from_toml(&out).expect("show output parses");
        assert_eq!(sc, registry::get("flash-crowd").expect("preset"));
    }

    #[test]
    fn unknown_scenario_lists_the_registry() {
        let err = call(&["run", "nope"]).unwrap_err();
        assert!(err.contains("unknown scenario `nope`"), "{err}");
        assert!(err.contains("paper-fig3"), "{err}");
    }

    #[test]
    fn unknown_flags_and_commands_error_with_usage() {
        let err = call(&["frobnicate"]).unwrap_err();
        assert!(err.contains("unknown command"), "{err}");
        let err = call(&["run", "paper-fig3", "--wat"]).unwrap_err();
        assert!(err.contains("unknown flag `--wat`"), "{err}");
        let err = call(&["run", "paper-fig3", "--axis", "gain=1"]).unwrap_err();
        assert!(err.contains("only valid for `sweep`"), "{err}");
    }

    #[test]
    fn axis_specs_parse_lists_and_ranges() {
        let a = parse_axis("gain=0.1,0.5,0.9").expect("list");
        assert_eq!(a.param, AxisParam::Gain);
        assert_eq!(a.values, vec![0.1, 0.5, 0.9]);
        let a = parse_axis("failure-scale=0:1:0.25").expect("range");
        assert_eq!(a.values, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
        let err = parse_axis("gain").unwrap_err();
        assert!(err.contains("param=values"), "{err}");
        let err = parse_axis("warp=1,2").unwrap_err();
        assert!(err.contains("unknown sweep parameter"), "{err}");
        let err = parse_axis("gain=1:0:0.1").unwrap_err();
        assert!(err.contains("lo <= hi"), "{err}");
    }

    #[test]
    fn run_renders_a_table_with_axis_columns() {
        let out = call(&["run", "paper-fig5", "--reps", "4", "--threads", "2"]).expect("run works");
        assert!(out.contains("paper-fig5"), "{out}");
        assert!(out.contains("mean (s)"), "{out}");
        assert!(out.contains("1 point(s), 4 replications"), "{out}");
    }

    #[test]
    fn sweep_emits_csv_by_default_and_jsonl_on_request() {
        let csv = call(&[
            "sweep",
            "paper-fig5",
            "--axis",
            "gain=0.2,0.8",
            "--reps",
            "3",
        ]);
        // paper-fig5 uses lbp1-optimal (gainless): the axis must be
        // rejected with a helpful message, not silently ignored.
        let err = csv.unwrap_err();
        assert!(err.contains("no gain parameter"), "{err}");

        let csv = call(&[
            "sweep",
            "paper-delay-crossover",
            "--axis",
            "failure-scale=0.5,1.0",
            "--reps",
            "3",
            "--threads",
            "2",
        ])
        .expect("sweep works");
        assert!(
            csv.starts_with("scenario,point,delay-per-task,failure-scale,"),
            "{csv}"
        );
        assert_eq!(csv.lines().count(), 11, "5x2 grid + header:\n{csv}");

        let jsonl =
            call(&["run", "paper-fig5", "--reps", "3", "--format", "jsonl"]).expect("jsonl works");
        assert!(jsonl.starts_with("{\"scenario\":\"paper-fig5\""), "{jsonl}");
    }

    #[test]
    fn streamed_out_file_matches_stdout_bytes() {
        // `--out` streams rows to the file as points finish; the bytes must
        // equal the stdout rendering of the same sweep, for CSV and JSONL.
        let dir = std::env::temp_dir().join("churnbal_lab_cli_stream_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        for format in ["csv", "jsonl"] {
            let path = dir.join(format!("sweep.{format}"));
            let path_str = path.to_str().expect("utf8");
            let base = [
                "sweep",
                "paper-delay-crossover",
                "--axis",
                "failure-scale=0.5,1.5",
                "--reps",
                "3",
                "--format",
                format,
            ];
            let stdout = call(&base).expect("stdout sweep runs");
            let mut with_out: Vec<&str> = base.to_vec();
            with_out.extend(["--out", path_str]);
            let report = call(&with_out).expect("file sweep runs");
            let written = std::fs::read_to_string(&path).expect("file written");
            assert_eq!(written, stdout, "{format}: file bytes differ from stdout");
            let lines = written.lines().count();
            assert!(
                report.contains(&format!("wrote {lines} lines to {path_str}")),
                "{report}"
            );
        }
    }

    #[test]
    fn file_scenarios_load_and_run() {
        let dir = std::env::temp_dir().join("churnbal_lab_cli_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("custom.toml");
        let mut sc = registry::get("hot-spare").expect("preset");
        sc.name = "custom-hot-spare".into();
        std::fs::write(&path, sc.to_toml()).expect("write");
        let out = call(&["run", path.to_str().expect("utf8"), "--reps", "2"])
            .expect("file scenario runs");
        assert!(out.contains("custom-hot-spare"), "{out}");

        std::fs::write(&path, "name = \"broken\"\n").expect("write");
        let err = call(&["run", path.to_str().expect("utf8")]).unwrap_err();
        assert!(err.contains("missing key `reps`"), "{err}");
    }

    #[test]
    fn help_is_printed_without_arguments() {
        let out = call(&[]).expect("usage");
        assert!(out.contains("usage: churnbal-lab"), "{out}");
    }
}
