//! Integration: reproducibility guarantees across the whole stack.

use churnbal::prelude::*;

/// A full experiment (policy + engine + replication runner) is a pure
/// function of its seed, regardless of parallelism.
#[test]
fn full_stack_determinism_across_thread_counts() {
    let config = SystemConfig::paper([60, 35]);
    let k = Lbp2::optimal_initial_gain(&config);
    let runs: Vec<Vec<f64>> = [1usize, 2, 5, 8]
        .iter()
        .map(|&threads| {
            run_replications(
                &config,
                &|_| Lbp2::new(k),
                48,
                0xFEED,
                threads,
                SimOptions::default(),
            )
            .completion_times
        })
        .collect();
    for other in &runs[1..] {
        assert_eq!(&runs[0], other, "thread count changed the results");
    }
}

/// Model evaluations are bit-stable (pure arithmetic, no hidden state).
#[test]
fn model_is_bit_stable() {
    let params = TwoNodeParams::paper();
    let a = churnbal::model::mean::lbp1_mean(&params, [50, 30], 0, 17, WorkState::BOTH_UP);
    let b = churnbal::model::mean::lbp1_mean(&params, [50, 30], 0, 17, WorkState::BOTH_UP);
    assert_eq!(a.to_bits(), b.to_bits());
}

/// Trace-recording must not perturb the dynamics (observation only).
#[test]
fn tracing_does_not_change_the_run() {
    let config = SystemConfig::paper([40, 25]);
    let a = simulate(&config, &mut Lbp2::new(1.0), 3, SimOptions::default());
    let b = simulate(
        &config,
        &mut Lbp2::new(1.0),
        3,
        SimOptions {
            record_trace: true,
            ..SimOptions::default()
        },
    );
    assert_eq!(a.completion_time, b.completion_time);
    assert_eq!(a.metrics, b.metrics);
}

/// Different policies see the same churn path under the same seed
/// (common random numbers — what makes Fig. 4 and the gain sweeps fair).
#[test]
fn churn_path_is_policy_independent() {
    let config = SystemConfig::paper([80, 50]);
    let opts = SimOptions {
        record_trace: true,
        ..SimOptions::default()
    };
    let a = simulate(&config, &mut NoBalancing, 11, opts);
    let b = simulate(&config, &mut Lbp2::new(1.0), 11, opts);
    let ta = a.trace.expect("trace");
    let tb = b.trace.expect("trace");
    // Compare the first down-transition of each node (if any) — these are
    // drawn from the policy-independent churn streams. Completion times
    // differ, so only compare transitions before the shorter completion.
    let horizon = a.completion_time.min(b.completion_time);
    for node in 0..2 {
        let firsts = |s: &[(f64, bool)]| {
            s.iter()
                .find(|(t, up)| !up && *t < horizon)
                .map(|(t, _)| *t)
        };
        let fa = firsts(ta.state_series(node));
        let fb = firsts(tb.state_series(node));
        if let (Some(x), Some(y)) = (fa, fb) {
            assert_eq!(
                x, y,
                "node {node}: first failure time differs between policies"
            );
        }
    }
}
