//! The first-class experiment API: one concept for runs, sweeps and
//! multi-policy comparisons.
//!
//! An [`ExperimentSpec`] is `scenario × axes × policy set × options`. Its
//! [`Experiment`] executes the whole thing in **one pass** through the
//! shared work-stealing scheduler
//! ([`churnbal_cluster::exec::run_grid_policies_streaming`]): the policy
//! set is just another axis of the flattened task space, and replication
//! `r` of *every* policy at a grid point runs on the streams derived from
//! `(seed, r)` — common random numbers across policies by construction.
//! That makes the per-replication differences between two policies paired
//! samples, and [`ExperimentRow::delta`] reports their mean with a
//! t-based 95% confidence interval
//! ([`churnbal_stochastic::paired_comparison`]).
//!
//! Output is decoupled from execution through [`RowSink`]: CSV, JSON
//! lines and collecting (for tables/tests) are sink implementations, and
//! rows stream to the sink in `(grid point, policy)` order as cells
//! complete. Where a grid point is a two-node closed system, the Eq. 4
//! theory mean joins each row ([`ExperimentSpec::theory`],
//! [`crate::theory`]).
//!
//! The historical `run_scenario` / `run_sweep` / `run_sweep_streaming`
//! entry points survive as thin deprecated wrappers in [`crate::sweep`];
//! their output bytes are unchanged (the pinned sweep digests prove it).

use std::io::Write;
use std::path::Path;

use churnbal_cluster::exec::{
    run_grid_policies_resumable, run_grid_policies_streaming, ExecReport, PointJob, PointStats,
};
use churnbal_cluster::mc::McEstimate;
use churnbal_cluster::{ProbeReport, SimOptions, SystemConfig};
use churnbal_core::PolicySpec;
use churnbal_stochastic::{paired_comparison, Fnv1a, PairedComparison};

use crate::journal::{JournalConfig, RunJournal};
use crate::scenario::Scenario;
use crate::sweep::{expand_grid, sample_sd, Axis, AxisParam, RunOptions, SweepRow, SweepSchema};
use crate::theory::TheoryCache;

/// One labelled policy of a comparison: the display/CSV label (usually the
/// CLI token it was parsed from, e.g. `none` or `lbp2@0.5`) and the spec.
#[derive(Clone, Debug, PartialEq)]
pub struct PolicyEntry {
    /// Label printed in the `policy` column.
    pub label: String,
    /// The policy itself.
    pub spec: PolicySpec,
    /// When true, a `gain` axis does **not** rewrite this entry's gain:
    /// the policy rides along the axis at its own fixed gain, like a
    /// gainless policy. Set by the CLI for explicit `@gain` suffixes —
    /// `lbp2@0.2` must stay at 0.2 even when the grid sweeps gains.
    pub pinned_gain: bool,
}

impl PolicyEntry {
    /// Labels the entry with the spec's stable kind identifier; the gain
    /// (if any) follows a `gain` axis.
    #[must_use]
    pub fn from_spec(spec: PolicySpec) -> Self {
        Self {
            label: spec.kind().to_string(),
            spec,
            pinned_gain: false,
        }
    }

    /// An entry with an explicit label; the gain follows a `gain` axis.
    #[must_use]
    pub fn named(label: impl Into<String>, spec: PolicySpec) -> Self {
        Self {
            label: label.into(),
            spec,
            pinned_gain: false,
        }
    }
}

/// A complete experiment description: scenario × axes × policy set ×
/// execution options.
#[derive(Clone, Debug)]
pub struct ExperimentSpec {
    /// The base scenario (its baked-in axes are part of the grid).
    pub scenario: Scenario,
    /// Extra sweep axes on top of the scenario's baked-in ones.
    pub axes: Vec<Axis>,
    /// The policy set evaluated at every grid point. Empty = the
    /// scenario's own policy (a plain run/sweep); two or more entries
    /// make this a comparison: every row carries CRN-paired deltas
    /// against the [`ExperimentSpec::baseline`] entry.
    pub policies: Vec<PolicyEntry>,
    /// Index into [`ExperimentSpec::policies`] of the delta baseline.
    /// Defaults to 0 (the first policy); with a non-zero baseline each
    /// grid point's cells are buffered until the baseline cell arrives,
    /// so rows still stream in `(point, policy)` order.
    pub baseline: usize,
    /// Replications, seed, threads, chunking.
    pub options: RunOptions,
    /// Join the Eq. 4 theory mean (and `mc − theory`) where the model
    /// covers the point and policy; out-of-domain rows render empty
    /// cells.
    pub theory: bool,
    /// Write-ahead result journal (`--journal` / `--resume`): completed
    /// cells are appended to a content-addressed file under
    /// [`JournalConfig::dir`] and replayed on resume — see
    /// [`crate::journal`]. `None` falls back to the scenario's own
    /// `[journal]` table (without resume), or no journal at all.
    pub journal: Option<JournalConfig>,
}

impl ExperimentSpec {
    /// A plain run/sweep of the scenario under its own policy.
    #[must_use]
    pub fn sweep(scenario: Scenario, axes: Vec<Axis>, options: RunOptions) -> Self {
        Self {
            scenario,
            axes,
            policies: Vec::new(),
            baseline: 0,
            options,
            theory: false,
            journal: None,
        }
    }

    /// A multi-policy comparison (first entry as baseline), theory
    /// columns on. Reassign [`ExperimentSpec::baseline`] to delta against
    /// a different entry.
    #[must_use]
    pub fn compare(
        scenario: Scenario,
        axes: Vec<Axis>,
        policies: Vec<PolicyEntry>,
        options: RunOptions,
    ) -> Self {
        Self {
            scenario,
            axes,
            policies,
            baseline: 0,
            options,
            theory: true,
            journal: None,
        }
    }

    /// Content digest of the fully-resolved experiment: FNV-1a over the
    /// scenario's canonical TOML, the extra axes, the policy set (labels,
    /// full specs, pins), the baseline index and the *effective*
    /// replication count and seed. Two specs that could produce different
    /// output bytes digest differently; presentation-only options
    /// (threads, chunk, backend, metrics columns) are deliberately
    /// excluded — they never change result values. This digest names the
    /// write-ahead journal file, so a resume can never mix results from a
    /// different spec.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.update(self.scenario.to_toml().as_bytes());
        h.update_u64(self.axes.len() as u64);
        for axis in &self.axes {
            h.update(axis.param.key().as_bytes());
            h.update_u64(axis.values.len() as u64);
            for &v in &axis.values {
                h.update_u64(v.to_bits());
            }
        }
        h.update_u64(self.policies.len() as u64);
        for entry in &self.policies {
            h.update(entry.label.as_bytes());
            // The Debug form covers every parameter of every variant
            // (gains, sender/receiver, chaos-panic rep, ...).
            h.update(format!("{:?}", entry.spec).as_bytes());
            h.update_u64(u64::from(entry.pinned_gain));
        }
        h.update_u64(self.baseline as u64);
        h.update_u64(self.options.effective_reps(&self.scenario));
        h.update_u64(self.options.seed.unwrap_or(self.scenario.seed));
        h.finish()
    }
}

/// What a streaming consumer knows before the first row: the column
/// layout and the grid size.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentSchema {
    /// Scenario name.
    pub scenario: String,
    /// Axis parameters, in column order.
    pub axes: Vec<AxisParam>,
    /// Grid points (each yields one row per policy).
    pub points: usize,
    /// Policy labels, in evaluation order.
    pub policies: Vec<String>,
    /// Index into [`ExperimentSchema::policies`] of the delta baseline.
    pub baseline: usize,
    /// Whether rows carry `theory_mean` / `mc_minus_theory` columns.
    pub theory: bool,
    /// Whether rows carry paired-delta columns (≥ 2 policies).
    pub paired: bool,
    /// Whether rows carry the extended telemetry columns
    /// (`--metrics full`).
    pub metrics_full: bool,
    /// Whether simulation-time probing is armed for this experiment —
    /// rows then carry per-replication [`ProbeReport`]s through
    /// [`RowSink::probes`], and `--metrics full` additionally renders the
    /// merged histogram quantile columns.
    pub probe: bool,
}

impl ExperimentSchema {
    /// Total rows the experiment will emit.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.points * self.policies.len()
    }

    /// The sweep-schema view of this experiment (legacy wrapper support).
    #[must_use]
    pub fn to_sweep_schema(&self) -> SweepSchema {
        SweepSchema {
            scenario: self.scenario.clone(),
            axes: self.axes.clone(),
            points: self.points,
        }
    }
}

/// CRN-paired delta of one policy against the baseline policy of the
/// same grid point: the per-replication difference statistics of
/// [`churnbal_stochastic::paired_comparison`] (`policy − baseline`;
/// identically zero for the baseline row itself).
pub type PairedDelta = PairedComparison;

/// One result row: a `(grid point, policy)` cell.
#[derive(Clone, Debug)]
pub struct ExperimentRow {
    /// Grid-point index.
    pub index: usize,
    /// Axis coordinates, in axis order.
    pub coords: Vec<(AxisParam, f64)>,
    /// Index into [`ExperimentSchema::policies`].
    pub policy_index: usize,
    /// Policy label.
    pub policy: String,
    /// Replications run.
    pub reps: u64,
    /// Master seed used.
    pub seed: u64,
    /// Mean overall completion time (s).
    pub mean_completion: f64,
    /// 95% confidence half-width of the mean (normal approximation).
    pub ci95: f64,
    /// Sample standard deviation of the completion time.
    pub sd_completion: f64,
    /// Mean failures per replication.
    pub mean_failures: f64,
    /// Sample standard deviation of failures per replication.
    pub sd_failures: f64,
    /// Mean tasks shipped per replication.
    pub mean_tasks_shipped: f64,
    /// Sample standard deviation of tasks shipped per replication.
    pub sd_tasks_shipped: f64,
    /// Replications that hit the deadline without completing.
    pub incomplete: u64,
    /// Replications quarantined (panicked or timed out) and excluded
    /// from every statistic of this row; [`ExperimentRow::reps`] already
    /// counts only the survivors. Nonzero marks the row as degraded.
    pub quarantined: u64,
    /// Eq. 4 theory mean, when the model covers this point and policy.
    pub theory_mean: Option<f64>,
    /// `mean_completion − theory_mean`, when theory is available.
    pub mc_minus_theory: Option<f64>,
    /// Paired delta vs the point's baseline policy (`None` on plain
    /// sweeps).
    pub delta: Option<PairedDelta>,
    /// Mean node recoveries per replication.
    pub mean_recoveries: f64,
    /// Mean transfer batches per replication.
    pub mean_transfers: f64,
    /// Mean clamped transfer orders per replication (tasks a policy
    /// ordered that the source queue could not supply) — satellite of the
    /// observability PR.
    pub mean_tasks_clamped: f64,
    /// Mean in-transit task·seconds per replication.
    pub mean_transit_task_seconds: f64,
    /// Mean tasks permanently lost by the transfer channel per
    /// replication (0 under a reliable channel).
    pub mean_tasks_lost: f64,
    /// Mean channel redelivery attempts per replication.
    pub mean_retries: f64,
    /// Mean bounced batches per replication.
    pub mean_bounces: f64,
    /// Probe telemetry merged across this cell's replications (empty
    /// histograms when probing is off). Quantiles come from
    /// [`churnbal_stochastic::LogHistogram::quantile`].
    pub telemetry: ProbeReport,
}

impl ExperimentRow {
    /// The legacy sweep-row view: the base statistics columns shared with
    /// PR 2–4 output (theory/delta extras dropped).
    #[must_use]
    pub fn to_sweep_row(&self) -> SweepRow {
        SweepRow {
            index: self.index,
            coords: self.coords.clone(),
            reps: self.reps,
            seed: self.seed,
            policy: self.policy.clone(),
            mean_completion: self.mean_completion,
            ci95: self.ci95,
            sd_completion: self.sd_completion,
            mean_failures: self.mean_failures,
            sd_failures: self.sd_failures,
            mean_tasks_shipped: self.mean_tasks_shipped,
            sd_tasks_shipped: self.sd_tasks_shipped,
            incomplete: self.incomplete,
        }
    }
}

/// A consumer of experiment rows. Rows arrive in `(grid point, policy)`
/// order as cells complete; `begin` always precedes the first row and
/// `finish` follows the last (when the run succeeds).
pub trait RowSink {
    /// Announces the schema before any row.
    ///
    /// # Errors
    /// An error aborts the experiment before it starts executing.
    fn begin(&mut self, schema: &ExperimentSchema) -> Result<(), String> {
        let _ = schema;
        Ok(())
    }

    /// Consumes one row.
    ///
    /// # Errors
    /// An error aborts the remaining grid (workers stop claiming tasks).
    fn row(&mut self, row: &ExperimentRow) -> Result<(), String>;

    /// Receives the per-replication probe reports of a row (replication
    /// order, immediately after [`RowSink::row`] for the same row). Only
    /// called when probing is armed; the default implementation ignores
    /// them, so probe-oblivious sinks keep their exact bytes.
    ///
    /// # Errors
    /// An error aborts the remaining grid, like a `row` error.
    fn probes(&mut self, row: &ExperimentRow, reports: &[ProbeReport]) -> Result<(), String> {
        let _ = (row, reports);
        Ok(())
    }

    /// Flushes after the last row.
    ///
    /// # Errors
    /// Propagated to the experiment's caller.
    fn finish(&mut self) -> Result<(), String> {
        Ok(())
    }
}

// ---- renderers ---------------------------------------------------------

/// Renders an optional numeric cell: the shortest-round-trip float or an
/// empty CSV field.
fn csv_opt(x: Option<f64>) -> String {
    x.map(|v| format!("{v:?}")).unwrap_or_default()
}

/// JSON value for an optional number (`null` when absent).
fn json_opt(x: Option<f64>) -> String {
    x.map_or_else(|| "null".to_string(), |v| format!("{v:?}"))
}

/// The CSV header (with trailing newline) for `schema`: the legacy sweep
/// columns, then `theory_mean,mc_minus_theory` when theory is joined,
/// then `delta_mean,delta_sd,delta_ci95` when the experiment is paired.
/// Built on the PR 3 header renderer, so the base columns are
/// byte-identical to every pinned sweep CSV.
#[must_use]
pub fn experiment_csv_header(schema: &ExperimentSchema) -> String {
    let mut out = crate::sweep::csv_header(&schema.axes);
    let base_len = out.len() - 1; // strip the newline, extend, restore
    out.truncate(base_len);
    if schema.theory {
        out.push_str(",theory_mean,mc_minus_theory");
    }
    if schema.paired {
        out.push_str(",delta_mean,delta_sd,delta_ci95");
    }
    if schema.metrics_full {
        out.push_str(
            ",mean_recoveries,mean_transfers,mean_tasks_clamped,mean_transit_task_seconds,\
             mean_tasks_lost,mean_retries,mean_bounces",
        );
        if schema.probe {
            out.push_str(
                ",queue_p50,queue_p99,transfer_us_p50,transfer_us_p99,\
                 downtime_us_p50,downtime_us_p99,retry_us_p50,retry_us_p99",
            );
        }
    }
    out.push('\n');
    out
}

/// One CSV line (with trailing newline) for `row` under `schema`.
#[must_use]
pub fn experiment_csv_row(schema: &ExperimentSchema, row: &ExperimentRow) -> String {
    let mut out = crate::sweep::csv_row(&schema.scenario, &row.to_sweep_row());
    let base_len = out.len() - 1;
    out.truncate(base_len);
    if schema.theory {
        out.push(',');
        out.push_str(&csv_opt(row.theory_mean));
        out.push(',');
        out.push_str(&csv_opt(row.mc_minus_theory));
    }
    if schema.paired {
        // A row can lack a delta even under a paired schema: quarantine
        // can leave no replication surviving on both sides of the pair.
        // Render empty cells instead of panicking.
        match row.delta {
            Some(d) => out.push_str(&format!(
                ",{:?},{:?},{:?}",
                d.mean_delta, d.sd_delta, d.ci95_half_width
            )),
            None => out.push_str(",,,"),
        }
    }
    if schema.metrics_full {
        out.push_str(&format!(
            ",{:?},{:?},{:?},{:?},{:?},{:?},{:?}",
            row.mean_recoveries,
            row.mean_transfers,
            row.mean_tasks_clamped,
            row.mean_transit_task_seconds,
            row.mean_tasks_lost,
            row.mean_retries,
            row.mean_bounces
        ));
        if schema.probe {
            let t = &row.telemetry;
            out.push_str(&format!(
                ",{},{},{},{},{},{},{},{}",
                t.queue_hist.quantile(0.5),
                t.queue_hist.quantile(0.99),
                t.transfer_delay_us.quantile(0.5),
                t.transfer_delay_us.quantile(0.99),
                t.downtime_us.quantile(0.5),
                t.downtime_us.quantile(0.99),
                t.retry_delay_us.quantile(0.5),
                t.retry_delay_us.quantile(0.99)
            ));
        }
    }
    out.push('\n');
    out
}

/// One JSON-lines object (with trailing newline) for `row` under `schema`.
#[must_use]
pub fn experiment_jsonl_row(schema: &ExperimentSchema, row: &ExperimentRow) -> String {
    let mut out = crate::sweep::jsonl_row(&schema.scenario, &row.to_sweep_row());
    let base_len = out.len() - 2; // strip "}\n", extend, restore
    out.truncate(base_len);
    if schema.theory {
        out.push_str(&format!(
            ",\"theory_mean\":{},\"mc_minus_theory\":{}",
            json_opt(row.theory_mean),
            json_opt(row.mc_minus_theory)
        ));
    }
    if schema.paired {
        match row.delta {
            Some(d) => out.push_str(&format!(
                ",\"delta_mean\":{:?},\"delta_sd\":{:?},\"delta_ci95\":{:?}",
                d.mean_delta, d.sd_delta, d.ci95_half_width
            )),
            None => out.push_str(",\"delta_mean\":null,\"delta_sd\":null,\"delta_ci95\":null"),
        }
    }
    if schema.metrics_full {
        out.push_str(&format!(
            ",\"mean_recoveries\":{:?},\"mean_transfers\":{:?},\
             \"mean_tasks_clamped\":{:?},\"mean_transit_task_seconds\":{:?},\
             \"mean_tasks_lost\":{:?},\"mean_retries\":{:?},\"mean_bounces\":{:?}",
            row.mean_recoveries,
            row.mean_transfers,
            row.mean_tasks_clamped,
            row.mean_transit_task_seconds,
            row.mean_tasks_lost,
            row.mean_retries,
            row.mean_bounces
        ));
        if schema.probe {
            let t = &row.telemetry;
            out.push_str(&format!(
                ",\"queue_p50\":{},\"queue_p99\":{},\"transfer_us_p50\":{},\
                 \"transfer_us_p99\":{},\"downtime_us_p50\":{},\"downtime_us_p99\":{},\
                 \"retry_us_p50\":{},\"retry_us_p99\":{}",
                t.queue_hist.quantile(0.5),
                t.queue_hist.quantile(0.99),
                t.transfer_delay_us.quantile(0.5),
                t.transfer_delay_us.quantile(0.99),
                t.downtime_us.quantile(0.5),
                t.downtime_us.quantile(0.99),
                t.retry_delay_us.quantile(0.5),
                t.retry_delay_us.quantile(0.99)
            ));
        }
    }
    // Degraded rows carry an explicit marker; clean rows keep their
    // pre-quarantine bytes exactly.
    if row.quarantined > 0 {
        out.push_str(&format!(",\"quarantined\":{}", row.quarantined));
    }
    out.push_str("}\n");
    out
}

/// One probe-tick JSON line (with trailing newline) for `--probe-out`:
/// the fleet aggregates of one tick of one replication, keyed by
/// `(scenario, point, policy, rep, time)`. Emitted in
/// `(grid point, policy, replication, tick)` order, so the file is a pure
/// function of the experiment spec — bit-identical for any thread count.
#[must_use]
pub fn probe_jsonl_row(
    scenario: &str,
    point: usize,
    policy: &str,
    rep: usize,
    s: &churnbal_cluster::ProbeSample,
) -> String {
    let mut out = format!(
        "{{\"scenario\":{},\"point\":{point},\"policy\":{},\"rep\":{rep},\
         \"time\":{:?},\"up\":{},\"queue_total\":{},\"queue_max\":{},\
         \"queue_p50\":{},\"queue_p99\":{},\"in_transit\":{},\
         \"failures\":{},\"transfers\":{}",
        crate::sweep::json_string(scenario),
        crate::sweep::json_string(policy),
        s.time,
        s.up_nodes,
        s.queue_total,
        s.queue_max,
        s.queue_p50,
        s.queue_p99,
        s.in_transit,
        s.failures,
        s.transfers,
    );
    // Only lossy channels can dead-letter; a reliable run's telemetry
    // stream keeps its pre-channel bytes exactly (absent means 0).
    if s.tasks_lost > 0 {
        out.push_str(&format!(",\"tasks_lost\":{}", s.tasks_lost));
    }
    out.push_str("}\n");
    out
}

// ---- sinks -------------------------------------------------------------

/// Streams rows as CSV to any writer (header at `begin`, flush at
/// `finish`).
pub struct CsvSink<W: Write> {
    out: W,
    schema: Option<ExperimentSchema>,
}

impl<W: Write> CsvSink<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        Self { out, schema: None }
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> RowSink for CsvSink<W> {
    fn begin(&mut self, schema: &ExperimentSchema) -> Result<(), String> {
        self.out
            .write_all(experiment_csv_header(schema).as_bytes())
            .map_err(|e| format!("cannot write CSV header: {e}"))?;
        self.schema = Some(schema.clone());
        Ok(())
    }

    fn row(&mut self, row: &ExperimentRow) -> Result<(), String> {
        let schema = self.schema.as_ref().expect("begin precedes rows");
        self.out
            .write_all(experiment_csv_row(schema, row).as_bytes())
            .and_then(|()| self.out.flush())
            .map_err(|e| format!("cannot write CSV row: {e}"))
    }

    fn finish(&mut self) -> Result<(), String> {
        self.out
            .flush()
            .map_err(|e| format!("cannot flush CSV output: {e}"))
    }
}

/// Streams rows as JSON lines to any writer.
pub struct JsonlSink<W: Write> {
    out: W,
    schema: Option<ExperimentSchema>,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        Self { out, schema: None }
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> RowSink for JsonlSink<W> {
    fn begin(&mut self, schema: &ExperimentSchema) -> Result<(), String> {
        self.schema = Some(schema.clone());
        Ok(())
    }

    fn row(&mut self, row: &ExperimentRow) -> Result<(), String> {
        let schema = self.schema.as_ref().expect("begin precedes rows");
        self.out
            .write_all(experiment_jsonl_row(schema, row).as_bytes())
            .and_then(|()| self.out.flush())
            .map_err(|e| format!("cannot write JSONL row: {e}"))
    }

    fn finish(&mut self) -> Result<(), String> {
        self.out
            .flush()
            .map_err(|e| format!("cannot flush JSONL output: {e}"))
    }
}

/// Buffers every row in memory — what table renderers and tests want.
#[derive(Default)]
pub struct CollectSink {
    /// The announced schema.
    pub schema: Option<ExperimentSchema>,
    /// All rows, in `(point, policy)` order.
    pub rows: Vec<ExperimentRow>,
}

impl CollectSink {
    /// An empty collector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl RowSink for CollectSink {
    fn begin(&mut self, schema: &ExperimentSchema) -> Result<(), String> {
        self.schema = Some(schema.clone());
        Ok(())
    }

    fn row(&mut self, row: &ExperimentRow) -> Result<(), String> {
        self.rows.push(row.clone());
        Ok(())
    }
}

/// A fully collected experiment: schema plus every row.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// Column layout.
    pub schema: ExperimentSchema,
    /// All rows, in `(point, policy)` order.
    pub rows: Vec<ExperimentRow>,
}

impl ExperimentResult {
    /// Renders the whole result as CSV.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = experiment_csv_header(&self.schema);
        for row in &self.rows {
            out.push_str(&experiment_csv_row(&self.schema, row));
        }
        out
    }

    /// Renders the whole result as JSON lines.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            out.push_str(&experiment_jsonl_row(&self.schema, row));
        }
        out
    }
}

/// CRN pairing of two cells' slot-stable completion-time vectors, honest
/// under quarantine: replication `r` contributes only when it survived on
/// **both** sides (a quarantined slot holds a placeholder zero, and
/// pairing it would corrupt the delta). Returns `None` when no
/// replication survived on both sides — renderers show empty cells /
/// `null`s / `-` for such rows. With no quarantine anywhere (the normal
/// case) this is exactly the full-vector pairing, byte for byte.
fn paired_delta(
    times: &[f64],
    quarantined: &[u64],
    base_times: &[f64],
    base_quarantined: &[u64],
) -> Option<PairedDelta> {
    if quarantined.is_empty() && base_quarantined.is_empty() {
        return Some(paired_comparison(times, base_times));
    }
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for r in 0..times.len().min(base_times.len()) {
        let r64 = r as u64;
        if !quarantined.contains(&r64) && !base_quarantined.contains(&r64) {
            xs.push(times[r]);
            ys.push(base_times[r]);
        }
    }
    (!xs.is_empty()).then(|| paired_comparison(&xs, &ys))
}

// ---- execution ---------------------------------------------------------

/// A validated, runnable experiment.
#[derive(Clone, Debug)]
pub struct Experiment {
    spec: ExperimentSpec,
}

impl Experiment {
    /// Wraps a spec (validation happens in [`Experiment::run`], where the
    /// grid is expanded and every point's policies are checked up front).
    #[must_use]
    pub fn new(spec: ExperimentSpec) -> Self {
        Self { spec }
    }

    /// The spec this experiment runs.
    #[must_use]
    pub fn spec(&self) -> &ExperimentSpec {
        &self.spec
    }

    /// Collects the whole experiment in memory — the buffered convenience
    /// form of [`Experiment::run`].
    ///
    /// # Errors
    /// Same conditions as [`Experiment::run`].
    pub fn collect(&self) -> Result<ExperimentResult, String> {
        let mut sink = CollectSink::new();
        let schema = self.run(&mut sink)?;
        Ok(ExperimentResult {
            schema,
            rows: sink.rows,
        })
    }

    /// Runs the **base point** of the spec's scenario (axes ignored)
    /// under its first policy — or the scenario's own policy when the set
    /// is empty — and returns the raw Monte-Carlo estimate with every
    /// per-replication vector. The programmatic primitive behind the
    /// legacy `run_scenario`; rendered output goes through
    /// [`Experiment::run`] instead.
    ///
    /// # Errors
    /// Propagates scenario/policy validation failures.
    pub fn estimate(&self) -> Result<McEstimate, String> {
        let spec = &self.spec;
        let scenario = &spec.scenario;
        let config = scenario.system_config()?;
        let policy = match spec.policies.first() {
            Some(entry) => entry.spec.clone(),
            None => scenario.policy.clone(),
        };
        // Validate once up front so the per-replication build cannot fail.
        policy
            .validate_for(&config)
            .map_err(|e| format!("scenario {}: {e}", scenario.name))?;
        let job = PointJob {
            config: &config,
            reps: spec.options.effective_reps(scenario).max(1),
            seed: spec.options.seed.unwrap_or(scenario.seed),
            rep_base: 0,
            antithetic: false,
            options: SimOptions {
                deadline: scenario.deadline,
                backend: spec.options.backend,
                probe_dt: spec.options.effective_probe_dt(scenario),
                task_timeout: spec.options.task_timeout,
                audit: spec.options.audit,
                ..SimOptions::default()
            },
        };
        let mut stats = None;
        run_grid_policies_streaming(
            std::slice::from_ref(&job),
            1,
            &|_, _, r| policy.build_for_rep(&config, r).expect("validated above"),
            spec.options.threads,
            spec.options.chunk,
            |_, _, s| {
                stats = Some(s);
                Ok(())
            },
        )?;
        Ok(McEstimate::from_point_stats(
            stats.expect("one point always completes"),
        ))
    }

    /// Executes the experiment, streaming rows to `sink` in
    /// `(grid point, policy)` order as cells complete. One scheduler pass
    /// covers the entire `grid × policy set × replication` space; output
    /// bytes are bit-identical for any `threads` / `chunk` value.
    ///
    /// # Errors
    /// Propagates grid-expansion and validation failures, and anything
    /// the sink returns.
    pub fn run(&self, sink: &mut dyn RowSink) -> Result<ExperimentSchema, String> {
        self.run_with_report(sink).map(|(schema, _)| schema)
    }

    /// [`Experiment::run`] plus the scheduler's runtime instrumentation:
    /// per-worker task/chunk/event counts and wall-clock throughput
    /// ([`ExecReport`]). The report is observational — wall times depend
    /// on the machine — while the rows stay bit-deterministic.
    ///
    /// # Errors
    /// Same conditions as [`Experiment::run`].
    pub fn run_with_report(
        &self,
        sink: &mut dyn RowSink,
    ) -> Result<(ExperimentSchema, ExecReport), String> {
        let spec = &self.spec;
        let points = expand_grid(&spec.scenario, &spec.axes)?;
        let axes: Vec<AxisParam> = points
            .first()
            .map(|p| p.coords.iter().map(|&(a, _)| a).collect())
            .unwrap_or_default();

        // Resolve the policy set. Explicit policies inherit every gain
        // coordinate of a point (a gain axis sweeps each gain-bearing,
        // non-pinned policy of the comparison; gainless and gain-pinned
        // policies ride along as flat baselines, exactly the shape of
        // the paper's Fig. 3).
        let labels: Vec<String> = if spec.policies.is_empty() {
            vec![spec.scenario.policy.kind().to_string()]
        } else {
            spec.policies.iter().map(|e| e.label.clone()).collect()
        };
        let mut point_policies: Vec<Vec<PolicySpec>> = Vec::with_capacity(points.len());
        for point in &points {
            if spec.policies.is_empty() {
                point_policies.push(vec![point.scenario.policy.clone()]);
                continue;
            }
            let mut set = Vec::with_capacity(spec.policies.len());
            for entry in &spec.policies {
                let mut policy = entry.spec.clone();
                for &(param, value) in &point.coords {
                    // An explicitly pinned gain (`lbp2@0.2`) must never
                    // be silently overwritten by the axis — the entry
                    // rides along the grid at its own gain instead.
                    if param == AxisParam::Gain && policy.gain().is_some() && !entry.pinned_gain {
                        policy = policy.with_gain(value)?;
                    }
                }
                set.push(policy);
            }
            point_policies.push(set);
        }

        // Materialise configs and validate every (point, policy) pair up
        // front so the per-replication build in the workers cannot fail.
        let mut configs: Vec<SystemConfig> = Vec::with_capacity(points.len());
        for (point, set) in points.iter().zip(&point_policies) {
            let config = point.scenario.system_config()?;
            for policy in set {
                policy
                    .validate_for(&config)
                    .map_err(|e| format!("scenario {}: {e}", point.scenario.name))?;
            }
            configs.push(config);
        }

        // Join the Eq. 4 theory means (cheap: one lattice per distinct
        // two-node system, memoised).
        let theory: Vec<Vec<Option<f64>>> = if spec.theory {
            let mut cache = TheoryCache::new();
            points
                .iter()
                .zip(&configs)
                .zip(&point_policies)
                .map(|((point, config), set)| {
                    set.iter()
                        .map(|policy| cache.eq4_mean(&point.scenario, config, policy))
                        .collect()
                })
                .collect()
        } else {
            point_policies.iter().map(|s| vec![None; s.len()]).collect()
        };

        let jobs: Vec<PointJob<'_>> = points
            .iter()
            .zip(&configs)
            .map(|(point, config)| PointJob {
                config,
                reps: spec.options.effective_reps(&point.scenario).max(1),
                seed: spec.options.seed.unwrap_or(point.scenario.seed),
                rep_base: 0,
                antithetic: false,
                options: SimOptions {
                    deadline: point.scenario.deadline,
                    backend: spec.options.backend,
                    probe_dt: spec.options.effective_probe_dt(&point.scenario),
                    task_timeout: spec.options.task_timeout,
                    audit: spec.options.audit,
                    ..SimOptions::default()
                },
            })
            .collect();
        let probe = jobs.iter().any(|j| j.options.probe_dt.is_some());

        let paired = labels.len() > 1;
        if spec.baseline >= labels.len() {
            return Err(format!(
                "baseline index {} out of range for {} policies",
                spec.baseline,
                labels.len()
            ));
        }
        let schema = ExperimentSchema {
            scenario: spec.scenario.name.clone(),
            axes,
            points: points.len(),
            policies: labels,
            baseline: spec.baseline,
            theory: spec.theory,
            paired,
            metrics_full: spec.options.metrics_full,
            probe,
        };
        sink.begin(&schema)?;

        let k = schema.policies.len();
        let b = spec.baseline;

        // ---- write-ahead journal / resume -----------------------------
        // The CLI flag wins; a scenario's own [journal] table journals
        // without resuming (resume is an explicit, per-invocation act).
        let journal_cfg = spec.journal.clone().or_else(|| {
            spec.scenario.journal_dir.clone().map(|dir| JournalConfig {
                dir,
                resume: false,
                fsync_every: spec
                    .scenario
                    .journal_fsync_every
                    .unwrap_or(crate::journal::SYNC_EVERY),
            })
        });
        let mut preloaded: Vec<Option<PointStats>> = vec![None; points.len() * k];
        let mut journal: Option<RunJournal> = None;
        if let Some(cfg) = &journal_cfg {
            if probe {
                return Err("the result journal does not capture probe telemetry; \
                     drop --journal or disable probing"
                    .into());
            }
            let (j, records) = RunJournal::open_with(
                Path::new(&cfg.dir),
                spec.digest(),
                cfg.resume,
                cfg.fsync_every,
            )?;
            for rec in records {
                if rec.point >= points.len() || rec.policy >= k {
                    return Err(format!(
                        "journal {}: cell (point {}, policy {}) is outside the {}x{} grid",
                        j.path().display(),
                        rec.point,
                        rec.policy,
                        points.len(),
                        k
                    ));
                }
                let want = jobs[rec.point].reps as usize;
                if rec.stats.completion_times.len() != want {
                    return Err(format!(
                        "journal {}: cell (point {}, policy {}) holds {} replications, \
                         expected {}",
                        j.path().display(),
                        rec.point,
                        rec.policy,
                        rec.stats.completion_times.len(),
                        want
                    ));
                }
                preloaded[rec.point * k + rec.policy] = Some(rec.stats);
            }
            journal = Some(j);
        }
        // Which cells came from the journal — those must not be
        // re-appended when the drain emits them.
        let replayed: Vec<bool> = preloaded.iter().map(Option::is_some).collect();

        let build_row = |p: usize, v: usize, est: &McEstimate, delta: Option<PairedDelta>| {
            let theory_mean = theory[p][v];
            // Cross-replication histogram aggregation: exact integer
            // bucket adds, so the merge order cannot matter.
            let mut telemetry = ProbeReport::default();
            for report in &est.probes {
                telemetry.merge_telemetry(report);
            }
            ExperimentRow {
                index: points[p].index,
                coords: points[p].coords.clone(),
                policy_index: v,
                policy: schema.policies[v].clone(),
                // Quarantined replications are excluded from every
                // statistic, so the row honestly reports the surviving
                // sample size (and flags the loss in `quarantined`).
                reps: jobs[p].reps - est.quarantined,
                seed: jobs[p].seed,
                mean_completion: est.mean(),
                ci95: est.ci95(),
                sd_completion: sample_sd(est.completion_times.iter().copied()),
                mean_failures: est.mean_failures,
                sd_failures: sample_sd(est.failures_per_rep.iter().map(|&x| x as f64)),
                mean_tasks_shipped: est.mean_tasks_shipped,
                sd_tasks_shipped: sample_sd(est.tasks_shipped_per_rep.iter().map(|&x| x as f64)),
                incomplete: est.incomplete,
                quarantined: est.quarantined,
                theory_mean,
                mc_minus_theory: theory_mean.map(|t| est.mean() - t),
                delta,
                mean_recoveries: est.mean_recoveries,
                mean_transfers: est.mean_transfers,
                mean_tasks_clamped: est.mean_tasks_clamped,
                mean_transit_task_seconds: est.mean_transit_task_seconds,
                mean_tasks_lost: est.mean_tasks_lost,
                mean_retries: est.mean_retries,
                mean_bounces: est.mean_bounces,
                telemetry,
            }
        };
        // A cell's pairing inputs: the *slot-stable* per-replication
        // times (placeholder zeros included) plus the quarantined slots,
        // captured before `McEstimate::from_point_stats` drops them. CRN
        // pairing must align replication r with replication r, so slots
        // — not the compacted vectors — are what gets paired.
        let mut baseline_times: Vec<f64> = Vec::new();
        let mut baseline_quarantined: Vec<u64> = Vec::new();
        // Cells of the current point awaiting the baseline cell (only
        // used with a non-first baseline).
        let mut held: Vec<(usize, McEstimate, Vec<f64>, Vec<u64>)> = Vec::new();
        let report = run_grid_policies_resumable(
            &jobs,
            k,
            &|p, v, r| {
                point_policies[p][v]
                    .build_for_rep(&configs[p], r)
                    .expect("validated above")
            },
            spec.options.threads,
            spec.options.chunk,
            preloaded,
            |p, v, stats| {
                if let Some(j) = journal.as_mut() {
                    // Write-ahead: the cell hits disk before any sink
                    // sees it. Replayed cells are already on disk, and
                    // quarantined cells are withheld so a resume retries
                    // them instead of trusting placeholder slots.
                    if !replayed[p * k + v] && stats.quarantined_reps.is_empty() {
                        j.record(p, v, &stats)?;
                    }
                }
                let slot_times = stats.completion_times.clone();
                let quarantined = stats.quarantined_reps.clone();
                let est = McEstimate::from_point_stats(stats);
                let emit = |sink: &mut dyn RowSink,
                            v: usize,
                            est: &McEstimate,
                            delta: Option<PairedDelta>|
                 -> Result<(), String> {
                    let row = build_row(p, v, est, delta);
                    sink.row(&row)?;
                    if probe {
                        sink.probes(&row, &est.probes)?;
                    }
                    Ok(())
                };
                if !paired {
                    return emit(sink, v, &est, None);
                }
                if b == 0 {
                    // The baseline is the first cell of each point, so
                    // rows stream exactly as they complete.
                    if v == 0 {
                        baseline_times.clear();
                        baseline_times.extend_from_slice(&slot_times);
                        baseline_quarantined.clear();
                        baseline_quarantined.extend_from_slice(&quarantined);
                    }
                    let delta = paired_delta(
                        &slot_times,
                        &quarantined,
                        &baseline_times,
                        &baseline_quarantined,
                    );
                    return emit(sink, v, &est, delta);
                }
                // Non-first baseline: cells arrive in policy order, so
                // hold this point's cells until the last one, then emit
                // them together with deltas against the baseline cell.
                held.push((v, est, slot_times, quarantined));
                if v + 1 < k {
                    return Ok(());
                }
                let base = held
                    .iter()
                    .find(|(hv, ..)| *hv == b)
                    .expect("the baseline cell is part of the point");
                baseline_times.clear();
                baseline_times.extend_from_slice(&base.2);
                baseline_quarantined.clear();
                baseline_quarantined.extend_from_slice(&base.3);
                for (hv, hest, htimes, hq) in held.drain(..) {
                    let delta = paired_delta(&htimes, &hq, &baseline_times, &baseline_quarantined);
                    emit(sink, hv, &hest, delta)?;
                }
                Ok(())
            },
        )?;
        if let Some(j) = journal.as_mut() {
            j.finish()?;
        }
        sink.finish()?;
        Ok((schema, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    fn quick(reps: u64, threads: usize) -> RunOptions {
        RunOptions {
            reps: Some(reps),
            threads,
            ..RunOptions::default()
        }
    }

    fn compare_fig3(reps: u64, threads: usize) -> ExperimentResult {
        let scenario = registry::get("paper-fig3").expect("preset");
        let policies = ["lbp1", "lbp2", "none"]
            .iter()
            .map(|name| {
                PolicyEntry::named(
                    (*name).to_string(),
                    PolicySpec::parse(name, &scenario.policy).expect("parses"),
                )
            })
            .collect();
        Experiment::new(ExperimentSpec::compare(
            scenario,
            Vec::new(),
            policies,
            quick(reps, threads),
        ))
        .collect()
        .expect("compare runs")
    }

    #[test]
    fn single_policy_experiment_matches_the_legacy_sweep_bytes() {
        // The deprecated wrappers must keep their pinned bytes: a
        // single-policy, no-theory experiment rendered as CSV equals the
        // legacy sweep CSV byte for byte.
        #[allow(deprecated)]
        let legacy = crate::sweep::run_sweep(
            &registry::get("mmpp-bursty").expect("preset"),
            &[Axis {
                param: AxisParam::Gain,
                values: vec![0.25, 0.75],
            }],
            quick(4, 2),
        )
        .expect("legacy sweep runs")
        .to_csv();
        let result = Experiment::new(ExperimentSpec::sweep(
            registry::get("mmpp-bursty").expect("preset"),
            vec![Axis {
                param: AxisParam::Gain,
                values: vec![0.25, 0.75],
            }],
            quick(4, 2),
        ))
        .collect()
        .expect("experiment runs");
        assert_eq!(result.to_csv(), legacy);
        assert!(!result.schema.paired);
        assert!(!result.schema.theory);
    }

    #[test]
    fn compare_shares_random_numbers_across_policies() {
        // `none` vs `none`: identical trajectories, so every delta is 0
        // with a zero-width CI — CRN pairing at work.
        let scenario = registry::get("cascading-failures").expect("preset");
        let policies = vec![
            PolicyEntry::named("a", PolicySpec::NoBalancing),
            PolicyEntry::named("b", PolicySpec::NoBalancing),
        ];
        let result = Experiment::new(ExperimentSpec::compare(
            scenario,
            Vec::new(),
            policies,
            quick(6, 3),
        ))
        .collect()
        .expect("runs");
        assert_eq!(result.rows.len(), 2);
        let (a, b) = (&result.rows[0], &result.rows[1]);
        assert_eq!(a.mean_completion, b.mean_completion);
        let d = b.delta.expect("paired");
        assert_eq!(d.mean_delta, 0.0);
        assert_eq!(d.sd_delta, 0.0);
        assert_eq!(d.ci95_half_width, 0.0);
    }

    #[test]
    fn compare_fig3_emits_theory_and_paired_deltas() {
        let result = compare_fig3(4, 2);
        // 21 gain values × 3 policies.
        assert_eq!(result.rows.len(), 63);
        assert_eq!(
            result.schema.policies,
            vec!["lbp1".to_string(), "lbp2".into(), "none".into()]
        );
        for rows in result.rows.chunks(3) {
            let (lbp1, lbp2, none) = (&rows[0], &rows[1], &rows[2]);
            assert_eq!(lbp1.policy_index, 0);
            // The baseline delta is identically zero; the others are
            // genuine paired stats.
            let d0 = lbp1.delta.expect("paired");
            assert_eq!(
                (d0.mean_delta, d0.sd_delta, d0.ci95_half_width),
                (0.0, 0.0, 0.0)
            );
            let dn = none.delta.expect("paired");
            assert!(
                (dn.mean_delta - (none.mean_completion - lbp1.mean_completion)).abs() < 1e-9,
                "delta mean must equal the difference of means"
            );
            // Theory: Eq. 4 covers lbp1 and none, not LBP-2's
            // failure-compensated dynamics.
            assert!(lbp1.theory_mean.is_some());
            assert!(none.theory_mean.is_some());
            assert!(lbp2.theory_mean.is_none());
            let t = lbp1.theory_mean.expect("some");
            let gap = lbp1.mc_minus_theory.expect("some");
            assert!((gap - (lbp1.mean_completion - t)).abs() < 1e-12);
            // `none` ignores the gain axis: identical trajectories at
            // every gain (checked below against the first chunk).
        }
        // The gainless baseline is flat across the gain axis.
        let none_means: Vec<f64> = result
            .rows
            .iter()
            .filter(|r| r.policy == "none")
            .map(|r| r.mean_completion)
            .collect();
        assert!(none_means.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn compare_output_is_thread_and_chunk_invariant() {
        let reference = compare_fig3(3, 1).to_csv();
        assert_eq!(reference, compare_fig3(3, 4).to_csv());
        assert_eq!(reference, compare_fig3(3, 7).to_csv());
    }

    #[test]
    fn compare_rows_match_independent_single_policy_sweeps() {
        // The CRN contract: policy k's rows in a comparison are
        // bit-identical to a single-policy experiment of the same
        // scenario with that policy swapped in.
        let scenario = registry::get("paper-delay-crossover").expect("preset");
        let names = ["lbp2", "upon-failure-only", "none"];
        let policies: Vec<PolicyEntry> = names
            .iter()
            .map(|n| {
                PolicyEntry::named(
                    (*n).to_string(),
                    PolicySpec::parse(n, &scenario.policy).expect("parses"),
                )
            })
            .collect();
        let combined = Experiment::new(ExperimentSpec::compare(
            scenario.clone(),
            Vec::new(),
            policies.clone(),
            quick(5, 3),
        ))
        .collect()
        .expect("compare runs");
        for (v, entry) in policies.iter().enumerate() {
            let mut solo_scenario = scenario.clone();
            solo_scenario.policy = entry.spec.clone();
            let solo = Experiment::new(ExperimentSpec::sweep(
                solo_scenario,
                Vec::new(),
                quick(5, 1),
            ))
            .collect()
            .expect("solo runs");
            let compare_rows: Vec<&ExperimentRow> = combined
                .rows
                .iter()
                .filter(|r| r.policy_index == v)
                .collect();
            assert_eq!(compare_rows.len(), solo.rows.len());
            for (c, s) in compare_rows.iter().zip(&solo.rows) {
                assert_eq!(c.index, s.index);
                assert_eq!(c.mean_completion, s.mean_completion, "{}", entry.label);
                assert_eq!(c.sd_completion, s.sd_completion);
                assert_eq!(c.mean_failures, s.mean_failures);
                assert_eq!(c.incomplete, s.incomplete);
            }
        }
    }

    #[test]
    fn csv_and_jsonl_carry_the_extra_columns() {
        let result = compare_fig3(2, 2);
        let csv = result.to_csv();
        let header = csv.lines().next().expect("header");
        assert!(
            header
                .ends_with("incomplete,theory_mean,mc_minus_theory,delta_mean,delta_sd,delta_ci95"),
            "{header}"
        );
        // An out-of-domain theory cell is empty, not 0.
        let lbp2_line = csv.lines().nth(2).expect("lbp2 row");
        assert!(lbp2_line.contains(",lbp2,"), "{lbp2_line}");
        let jsonl = result.to_jsonl();
        let lbp2_json = jsonl.lines().nth(1).expect("lbp2 row");
        assert!(lbp2_json.contains("\"theory_mean\":null"), "{lbp2_json}");
        assert!(lbp2_json.contains("\"delta_mean\":"), "{lbp2_json}");
        let lbp1_json = jsonl.lines().next().expect("lbp1 row");
        assert!(!lbp1_json.contains("null"), "{lbp1_json}");
    }

    #[test]
    fn sink_errors_abort_the_run() {
        struct Failing(usize);
        impl RowSink for Failing {
            fn row(&mut self, _row: &ExperimentRow) -> Result<(), String> {
                self.0 += 1;
                if self.0 == 2 {
                    Err("disk full".into())
                } else {
                    Ok(())
                }
            }
        }
        let scenario = registry::get("paper-fig5").expect("preset");
        let policies = vec![
            PolicyEntry::from_spec(PolicySpec::NoBalancing),
            PolicyEntry::from_spec(PolicySpec::UponFailureOnly),
            PolicyEntry::from_spec(PolicySpec::Lbp2 { gain: 1.0 }),
        ];
        let mut sink = Failing(0);
        let err = Experiment::new(ExperimentSpec::compare(
            scenario,
            Vec::new(),
            policies,
            quick(2, 1),
        ))
        .run(&mut sink)
        .unwrap_err();
        assert_eq!(err, "disk full");
        assert_eq!(sink.0, 2, "the run must stop at the failing row");
    }

    #[test]
    fn gain_axis_on_an_all_gainless_comparison_still_errors_usefully() {
        // The *scenario's* policy carries the axis through expansion, so a
        // gain axis on a gainless scenario policy errors exactly as the
        // legacy sweep did.
        let mut scenario = registry::get("paper-fig3").expect("preset");
        scenario.policy = PolicySpec::NoBalancing;
        let err = Experiment::new(ExperimentSpec::compare(
            scenario,
            Vec::new(),
            vec![PolicyEntry::from_spec(PolicySpec::NoBalancing)],
            quick(2, 1),
        ))
        .collect()
        .unwrap_err();
        assert!(err.contains("no gain parameter"), "{err}");
    }
}
