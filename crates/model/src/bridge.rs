//! Exact CTMC formulations of the same dynamics the recursions solve.
//!
//! The regenerative-process equations of §2.1 are first-step equations of
//! an absorbing continuous-time Markov chain over states
//! `(queue sizes, work state, in-transit load)`. This module builds that
//! chain explicitly with [`churnbal_ctmc`], giving:
//!
//! * an independent numerical answer for every quantity Eqs. (4)–(5)
//!   produce (used heavily in tests);
//! * an *exact* model of LBP-2's failure-triggered transfers, which the
//!   paper itself only evaluates by Monte-Carlo and experiment;
//! * an exact small-`n` multi-node model validating the simulator beyond
//!   two nodes.

use churnbal_ctmc::{explore, Explored};

use crate::rates::TwoNodeParams;
use crate::state::WorkState;

/// Full system state of the two-node LBP-1 dynamics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TwoNodeSysState {
    /// Tasks queued at each node.
    pub m: [u32; 2],
    /// Work state (who is up).
    pub up: WorkState,
    /// In-flight load: `(receiver, size)`; LBP-1 has at most one transfer.
    pub transit: Option<(u8, u32)>,
}

/// Builds the absorbing CTMC of the two-node system after LBP-1's initial
/// action: queues `m` (post-transfer), optional load in transit.
///
/// Exploration starts from every reachable work state so any initial
/// condition can be queried on the same chain.
///
/// # Panics
/// Panics if the state space exceeds `max_states`.
///
/// A zero-task system (`m == [0, 0]` and no transit) never absorbs — the
/// work states cycle forever — so callers must special-case the empty
/// workload (completion time 0) before building a chain, as every public
/// entry point in this crate does.
#[must_use]
pub fn lbp1_chain(
    params: &TwoNodeParams,
    m: [u32; 2],
    transit: Option<(usize, u32)>,
    max_states: usize,
) -> Explored<TwoNodeSysState> {
    let p = *params;
    let transit = transit.map(|(r, l)| {
        assert!(r < 2, "receiver must be 0 or 1");
        assert!(l > 0, "empty transfer should be None");
        (r as u8, l)
    });
    let space = crate::state::StateSpace::new(&p);
    let initial: Vec<TwoNodeSysState> = space
        .states()
        .iter()
        .map(|&up| TwoNodeSysState { m, up, transit })
        .collect();
    explore(
        &initial,
        move |s| {
            let mut out: Vec<(f64, Option<TwoNodeSysState>)> = Vec::with_capacity(6);
            let tasks_left = s.m[0] + s.m[1] + s.transit.map_or(0, |(_, l)| l);
            for i in 0..2 {
                if s.up.is_up(i) {
                    if s.m[i] > 0 {
                        let mut next = *s;
                        next.m[i] -= 1;
                        let done = tasks_left == 1;
                        out.push((p.service[i], if done { None } else { Some(next) }));
                    }
                    if p.churns(i) {
                        let mut next = *s;
                        next.up = s.up.with_down(i);
                        out.push((p.failure[i], Some(next)));
                    }
                } else {
                    let mut next = *s;
                    next.up = s.up.with_up(i);
                    out.push((p.recovery[i], Some(next)));
                }
            }
            if let Some((recv, l)) = s.transit {
                let mut next = *s;
                next.m[recv as usize] += l;
                next.transit = None;
                out.push((p.delay.rate(l), Some(next)));
            }
            out
        },
        max_states,
    )
}

/// Exact mean completion time of the LBP-1 dynamics via absorption
/// analysis — the independent check on [`crate::mean`].
///
/// `sender` ships `l` tasks out of the initial workload `m0`; the system
/// starts in `initial`.
#[must_use]
pub fn lbp1_mean_exact(
    params: &TwoNodeParams,
    m0: [u32; 2],
    sender: usize,
    l: u32,
    initial: WorkState,
) -> f64 {
    assert!(sender < 2 && l <= m0[sender], "invalid transfer spec");
    if m0[0] + m0[1] == 0 {
        // Nothing to process: the chain never absorbs (work states cycle
        // forever), but the completion time is identically zero.
        return 0.0;
    }
    let mut m = m0;
    m[sender] -= l;
    let transit = if l > 0 { Some((1 - sender, l)) } else { None };
    let explored = lbp1_chain(params, m, transit, 4_000_000);
    let start = TwoNodeSysState {
        m,
        up: initial,
        transit: transit.map(|(r, l)| (r as u8, l)),
    };
    let idx = explored
        .index(&start)
        .expect("initial state is in the chain");
    churnbal_ctmc::expected_absorption_times(&explored.chain)[idx]
}

/// Full system state of the two-node LBP-2 dynamics: multiple transfers can
/// be in flight (one per recent failure), so the flight set is part of the
/// state. Kept sorted for canonical hashing.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Lbp2State {
    /// Tasks queued at each node.
    pub m: [u32; 2],
    /// Work state.
    pub up: WorkState,
    /// In-flight loads `(receiver, size)`, sorted.
    pub flights: Vec<(u8, u32)>,
}

impl Lbp2State {
    fn tasks_left(&self) -> u32 {
        self.m[0] + self.m[1] + self.flights.iter().map(|&(_, l)| l).sum::<u32>()
    }

    fn with_flight(mut self, recv: u8, size: u32) -> Self {
        self.flights.push((recv, size));
        self.flights.sort_unstable();
        self
    }
}

/// Builds the absorbing CTMC of the two-node LBP-2 dynamics.
///
/// `lf_on_failure[j]` is the (fixed, Eq. 8) number of tasks node `j` ships
/// to the other node at each of its failure instants — clamped to its
/// current queue, as the implementation layer must do. `initial_flights`
/// lets the caller model the `t = 0` balancing transfer.
///
/// # Panics
/// Panics if the state space exceeds `max_states` (LBP-2's flight set is
/// unbounded in principle; in practice arrival rates keep it tiny).
///
/// Zero-task systems never absorb; see [`lbp1_chain`].
#[must_use]
pub fn lbp2_chain(
    params: &TwoNodeParams,
    m0: [u32; 2],
    lf_on_failure: [u32; 2],
    initial_flights: &[(usize, u32)],
    max_states: usize,
) -> Explored<Lbp2State> {
    let p = *params;
    let mut flights: Vec<(u8, u32)> = initial_flights
        .iter()
        .map(|&(r, l)| {
            assert!(r < 2 && l > 0, "invalid initial flight");
            (r as u8, l)
        })
        .collect();
    flights.sort_unstable();
    let space = crate::state::StateSpace::new(&p);
    let initial: Vec<Lbp2State> = space
        .states()
        .iter()
        .map(|&up| Lbp2State {
            m: m0,
            up,
            flights: flights.clone(),
        })
        .collect();
    explore(
        &initial,
        move |s| {
            let mut out: Vec<(f64, Option<Lbp2State>)> = Vec::with_capacity(8);
            let tasks_left = s.tasks_left();
            for (i, &lf_full) in lf_on_failure.iter().enumerate() {
                if s.up.is_up(i) {
                    if s.m[i] > 0 {
                        let mut next = s.clone();
                        next.m[i] -= 1;
                        let done = tasks_left == 1;
                        out.push((p.service[i], if done { None } else { Some(next) }));
                    }
                    if p.churns(i) {
                        // Failure: the backup of node i ships lf tasks to
                        // the other node (clamped to what it holds).
                        let mut next = s.clone();
                        next.up = s.up.with_down(i);
                        let lf = lf_full.min(next.m[i]);
                        if lf > 0 {
                            next.m[i] -= lf;
                            next = next.with_flight(1 - i as u8, lf);
                        }
                        out.push((p.failure[i], Some(next)));
                    }
                } else {
                    let mut next = s.clone();
                    next.up = s.up.with_up(i);
                    out.push((p.recovery[i], Some(next)));
                }
            }
            for (fi, &(recv, size)) in s.flights.iter().enumerate() {
                let mut next = s.clone();
                next.flights.remove(fi);
                next.m[recv as usize] += size;
                out.push((p.delay.rate(size), Some(next)));
            }
            out
        },
        max_states,
    )
}

/// Exact mean completion time of the two-node LBP-2 dynamics via
/// absorption analysis (the paper only has MC/experiment for this —
/// the exact value is an *extension*).
#[must_use]
pub fn lbp2_mean_exact(
    params: &TwoNodeParams,
    m0: [u32; 2],
    lf_on_failure: [u32; 2],
    initial_transfer: Option<(usize, u32)>,
    initial: WorkState,
    max_states: usize,
) -> f64 {
    let mut m = m0;
    let mut flights = Vec::new();
    if let Some((sender, l)) = initial_transfer {
        assert!(
            sender < 2 && l <= m0[sender] && l > 0,
            "invalid initial transfer"
        );
        m[sender] -= l;
        flights.push((1 - sender, l));
    }
    if m0[0] + m0[1] == 0 {
        // Same empty-workload guard as `lbp1_mean_exact`.
        return 0.0;
    }
    let explored = lbp2_chain(params, m, lf_on_failure, &flights, max_states);
    let start = Lbp2State {
        m,
        up: initial,
        flights: flights.iter().map(|&(r, l)| (r as u8, l)).collect(),
    };
    let idx = explored
        .index(&start)
        .expect("initial state is in the chain");
    churnbal_ctmc::expected_absorption_times(&explored.chain)[idx]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mean::{lbp1_mean, Lbp1Evaluator};
    use crate::rates::{DelayModel, TwoNodeParams};

    fn small_params() -> TwoNodeParams {
        TwoNodeParams::new(
            [1.08, 1.86],
            [0.05, 0.05],
            [0.1, 0.05],
            DelayModel::per_task(0.1),
        )
    }

    #[test]
    fn zero_workload_means_are_zero() {
        let p = small_params();
        assert_eq!(lbp1_mean_exact(&p, [0, 0], 0, 0, WorkState::BOTH_UP), 0.0);
        assert_eq!(
            lbp2_mean_exact(&p, [0, 0], [3, 3], None, WorkState::BOTH_UP, 1000),
            0.0
        );
    }

    #[test]
    fn recursion_and_ctmc_agree_without_transfer() {
        let p = small_params();
        for m0 in [[3u32, 2], [5, 0], [0, 4]] {
            let rec = lbp1_mean(&p, m0, 0, 0, WorkState::BOTH_UP);
            let exact = lbp1_mean_exact(&p, m0, 0, 0, WorkState::BOTH_UP);
            assert!(
                (rec - exact).abs() < 1e-8,
                "m0={m0:?}: recursion {rec} vs ctmc {exact}"
            );
        }
    }

    #[test]
    fn recursion_and_ctmc_agree_with_transfer() {
        let p = small_params();
        let m0 = [6u32, 3];
        for l in [1u32, 3, 6] {
            let rec = lbp1_mean(&p, m0, 0, l, WorkState::BOTH_UP);
            let exact = lbp1_mean_exact(&p, m0, 0, l, WorkState::BOTH_UP);
            assert!(
                (rec - exact).abs() < 1e-8,
                "l={l}: recursion {rec} vs ctmc {exact}"
            );
        }
    }

    #[test]
    fn recursion_and_ctmc_agree_from_down_states() {
        let p = small_params();
        let ev = Lbp1Evaluator::new(&p, [4, 4]);
        for state in [
            WorkState::new(false, true),
            WorkState::new(true, false),
            WorkState::new(false, false),
        ] {
            let rec = ev.mean(0, 2, state);
            let exact = lbp1_mean_exact(&p, [4, 4], 0, 2, state);
            assert!((rec - exact).abs() < 1e-8, "{state:?}: {rec} vs {exact}");
        }
    }

    #[test]
    fn reverse_direction_agrees_too() {
        let p = small_params();
        let rec = lbp1_mean(&p, [2, 7], 1, 4, WorkState::BOTH_UP);
        let exact = lbp1_mean_exact(&p, [2, 7], 1, 4, WorkState::BOTH_UP);
        assert!((rec - exact).abs() < 1e-8, "{rec} vs {exact}");
    }

    #[test]
    fn lbp2_chain_reduces_to_lbp1_when_lf_is_zero() {
        let p = small_params();
        let a = lbp2_mean_exact(
            &p,
            [4, 3],
            [0, 0],
            Some((0, 2)),
            WorkState::BOTH_UP,
            100_000,
        );
        let b = lbp1_mean_exact(&p, [4, 3], 0, 2, WorkState::BOTH_UP);
        assert!((a - b).abs() < 1e-8, "{a} vs {b}");
    }

    #[test]
    fn lbp2_failure_transfers_change_the_answer() {
        let p = small_params();
        let without = lbp2_mean_exact(&p, [6, 2], [0, 0], None, WorkState::BOTH_UP, 200_000);
        let with = lbp2_mean_exact(&p, [6, 2], [2, 2], None, WorkState::BOTH_UP, 200_000);
        assert!((without - with).abs() > 1e-6, "LF transfers must matter");
    }

    #[test]
    fn lbp2_flight_clamping_bounds_state_space() {
        // Even with absurd LF the queue clamp keeps things finite.
        let p = small_params();
        let v = lbp2_mean_exact(&p, [3, 3], [100, 100], None, WorkState::BOTH_UP, 500_000);
        assert!(v.is_finite() && v > 0.0);
    }

    #[test]
    fn chain_size_is_as_expected_for_no_churn() {
        let p = TwoNodeParams::paper_no_failure();
        let e = lbp1_chain(&p, [3, 2], None, 10_000);
        // (3+1)*(2+1) cells minus the absorbing (0,0) cell, one work state.
        assert_eq!(e.chain.num_states(), 11);
    }
}
