//! Property-based tests of the stochastic foundations.

use churnbal_stochastic::{
    dist::Sample, stats::quantile, Deterministic, Ecdf, Erlang, Exponential, Histogram,
    LogHistogram, OnlineStats, StreamFactory, Uniform, Xoshiro256pp,
};
use proptest::prelude::*;

proptest! {
    /// Exponential samples are strictly positive and finite for any rate.
    #[test]
    fn exponential_support(rate in 0.01f64..100.0, seed in any::<u64>()) {
        let d = Exponential::new(rate);
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        for _ in 0..100 {
            let x = d.sample(&mut rng);
            prop_assert!(x > 0.0 && x.is_finite());
        }
    }

    /// Uniform samples stay inside their interval.
    #[test]
    fn uniform_support(lo in -100.0f64..100.0, width in 0.001f64..100.0, seed in any::<u64>()) {
        let d = Uniform::new(lo, lo + width);
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        for _ in 0..100 {
            let x = d.sample(&mut rng);
            prop_assert!(x >= lo && x < lo + width);
        }
    }

    /// Erlang mean parameterisation is exact for any (k, mean).
    #[test]
    fn erlang_mean_roundtrip(k in 1u32..20, mean in 0.01f64..50.0) {
        let d = Erlang::with_mean(k, mean);
        prop_assert!((d.mean() - mean).abs() < 1e-9 * mean.max(1.0));
    }

    /// Welford merge equals sequential accumulation for arbitrary splits.
    #[test]
    fn stats_merge_associativity(
        xs in prop::collection::vec(-1e6f64..1e6, 1..200),
        split in 0usize..200,
    ) {
        let split = split.min(xs.len());
        let mut left = OnlineStats::from_slice(&xs[..split]);
        let right = OnlineStats::from_slice(&xs[split..]);
        left.merge(&right);
        let whole = OnlineStats::from_slice(&xs);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() <= 1e-6 * whole.mean().abs().max(1.0));
        prop_assert!((left.variance() - whole.variance()).abs()
            <= 1e-6 * whole.variance().abs().max(1.0));
    }

    /// min <= mean <= max always.
    #[test]
    fn stats_ordering(xs in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let s = OnlineStats::from_slice(&xs);
        prop_assert!(s.min() <= s.mean() + 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
    }

    /// Quantiles are monotone in q and bounded by the extremes.
    #[test]
    fn quantile_monotone(xs in prop::collection::vec(-1e3f64..1e3, 2..100)) {
        let q25 = quantile(&xs, 0.25);
        let q50 = quantile(&xs, 0.50);
        let q75 = quantile(&xs, 0.75);
        prop_assert!(q25 <= q50 && q50 <= q75);
        prop_assert!(quantile(&xs, 0.0) <= q25);
        prop_assert!(q75 <= quantile(&xs, 1.0));
    }

    /// The ECDF is monotone, 0 before the minimum, 1 from the maximum on.
    #[test]
    fn ecdf_shape(xs in prop::collection::vec(-1e3f64..1e3, 1..100)) {
        let e = Ecdf::new(xs.clone());
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(e.eval(lo - 1.0), 0.0);
        prop_assert_eq!(e.eval(hi), 1.0);
        let mut prev = 0.0;
        for i in 0..=20 {
            let t = lo + (hi - lo) * f64::from(i) / 20.0;
            let v = e.eval(t);
            prop_assert!(v >= prev - 1e-12);
            prev = v;
        }
    }

    /// Histogram density integrates to exactly the covered fraction.
    #[test]
    fn histogram_integral(
        xs in prop::collection::vec(0.0f64..10.0, 1..500),
        bins in 1usize..64,
    ) {
        let mut h = Histogram::new(0.0, 5.0, bins);
        h.add_all(&xs);
        let covered = xs.iter().filter(|&&x| x < 5.0).count() as f64 / xs.len() as f64;
        let integral: f64 = (0..h.bins()).map(|i| h.density(i) * h.bin_width()).sum();
        prop_assert!((integral - covered).abs() < 1e-9);
    }

    /// Streams derived from the same (seed, id) agree; different ids do not
    /// produce identical prefixes.
    #[test]
    fn stream_identity(seed in any::<u64>(), id in 0u64..1000) {
        let f = StreamFactory::new(seed);
        let mut a = f.stream(id);
        let mut b = f.stream(id);
        let mut c = f.stream(id.wrapping_add(1));
        let mut all_equal = true;
        for _ in 0..32 {
            let x = a.next_u64();
            prop_assert_eq!(x, b.next_u64());
            if x != c.next_u64() {
                all_equal = false;
            }
        }
        prop_assert!(!all_equal, "adjacent streams must diverge");
    }

    /// Deterministic distribution is, in fact, deterministic.
    #[test]
    fn deterministic_point_mass(v in 0.0f64..1e6, seed in any::<u64>()) {
        let d = Deterministic::new(v);
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        prop_assert_eq!(d.sample(&mut rng), v);
        prop_assert_eq!(d.variance(), 0.0);
    }

    /// next_below(n) < n for all n.
    #[test]
    fn next_below_bound(n in 1u64..1_000_000, seed in any::<u64>()) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(rng.next_below(n) < n);
        }
    }

    /// Log-histogram merge over an arbitrary split equals the single-pass
    /// accumulation exactly — bucket counts are integers, so this is
    /// bitwise equality, the property the cross-replication telemetry
    /// merge relies on.
    #[test]
    fn log_histogram_merge_equals_single_pass(
        xs in prop::collection::vec(any::<u64>(), 0..200),
        split in 0usize..200,
    ) {
        let split = split.min(xs.len());
        let mut left = LogHistogram::default();
        for &x in &xs[..split] {
            left.record(x);
        }
        let mut right = LogHistogram::default();
        for &x in &xs[split..] {
            right.record(x);
        }
        left.merge(&right);
        let mut whole = LogHistogram::default();
        for &x in &xs {
            whole.record(x);
        }
        prop_assert_eq!(left, whole);
    }

    /// Log-histogram quantiles are monotone in q, bounded by the exact
    /// maximum, and never below the smallest recorded value's bucket floor.
    #[test]
    fn log_histogram_quantile_monotone(
        xs in prop::collection::vec(0u64..1_000_000_000, 1..200),
    ) {
        let mut h = LogHistogram::default();
        for &x in &xs {
            h.record(x);
        }
        let max = xs.iter().copied().max().unwrap_or(0);
        prop_assert_eq!(h.max(), max);
        let mut prev = 0;
        for i in 0..=20 {
            let q = f64::from(i) / 20.0;
            let v = h.quantile(q);
            prop_assert!(v >= prev, "quantile({q}) = {v} < quantile at lower q = {prev}");
            prop_assert!(v <= max, "quantile({q}) = {v} exceeds the exact max {max}");
            prev = v;
        }
        // The top quantile walks off the last populated bucket and
        // reports the exact maximum, not a power-of-two bucket edge.
        prop_assert_eq!(h.quantile(1.0), max);
    }
}
