//! Property-based tests of the event kernel: arbitrary interleavings of
//! scheduling and cancellation must preserve ordering and bookkeeping.

use churnbal_desim::{CalendarQueue, EventQueue, SimTime};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Schedule(f64),
    CancelNth(usize),
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0.0f64..100.0).prop_map(Op::Schedule),
        (0usize..64).prop_map(Op::CancelNth),
        Just(Op::Pop),
    ]
}

/// Like [`op_strategy`] but with delays drawn from a coarse quarter-unit
/// grid, so schedules frequently collide on the exact same timestamp —
/// the regime where FIFO tie-breaking is load-bearing.
fn tie_heavy_op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..16).prop_map(|q| Op::Schedule(f64::from(q) * 0.25)),
        (0u8..16).prop_map(|q| Op::Schedule(f64::from(q) * 0.25)),
        (0usize..64).prop_map(Op::CancelNth),
        Just(Op::Pop),
    ]
}

proptest! {
    /// Pops are globally ordered by time regardless of the op sequence.
    #[test]
    fn pops_are_time_ordered(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut q = EventQueue::new();
        let mut ids = Vec::new();
        let mut last = SimTime::ZERO;
        for op in ops {
            match op {
                Op::Schedule(dt) => ids.push(q.schedule_in(dt, ())),
                Op::CancelNth(i) => {
                    if !ids.is_empty() {
                        let id = ids[i % ids.len()];
                        q.cancel(id);
                    }
                }
                Op::Pop => {
                    if let Some(ev) = q.pop() {
                        prop_assert!(ev.time >= last);
                        last = ev.time;
                    }
                }
            }
        }
        while let Some(ev) = q.pop() {
            prop_assert!(ev.time >= last);
            last = ev.time;
        }
        prop_assert!(q.is_empty());
        prop_assert_eq!(q.len(), 0);
    }

    /// The number of events popped equals schedules minus successful
    /// cancellations.
    #[test]
    fn conservation_of_events(
        delays in prop::collection::vec(0.0f64..50.0, 1..100),
        cancels in prop::collection::vec(0usize..100, 0..50),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = delays.iter().map(|&d| q.schedule_in(d, ())).collect();
        let mut cancelled = 0;
        for c in cancels {
            if q.cancel(ids[c % ids.len()]) {
                cancelled += 1;
            }
        }
        prop_assert_eq!(q.len(), delays.len() - cancelled);
        let mut popped = 0;
        while q.pop().is_some() {
            popped += 1;
        }
        prop_assert_eq!(popped, delays.len() - cancelled);
    }

    /// FIFO among equal timestamps, for any mix of distinct/equal times.
    #[test]
    fn fifo_among_ties(times in prop::collection::vec(0u8..4, 1..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::new(f64::from(t)), i);
        }
        let mut last_per_time = [None::<usize>; 4];
        while let Some(ev) = q.pop() {
            let bucket = ev.time.seconds() as usize;
            if let Some(prev) = last_per_time[bucket] {
                prop_assert!(ev.payload > prev, "FIFO violated within a timestamp");
            }
            last_per_time[bucket] = Some(ev.payload);
        }
    }

    /// Differential test: the indexed heap agrees with a brute-force
    /// reference oracle on every observable — pop sequence, cancel return
    /// values, and live counts — through arbitrary schedule/cancel/pop
    /// interleavings (including double-cancels and cancel-after-fire).
    #[test]
    fn indexed_heap_matches_reference_oracle(
        ops in prop::collection::vec(op_strategy(), 1..300),
    ) {
        /// The oracle: a flat list of (time, seq, state) with linear-scan
        /// minimum pops — trivially correct, O(n) everything.
        #[derive(Clone, Copy, PartialEq)]
        enum St { Pending, Fired, Cancelled }
        struct Oracle { events: Vec<(SimTime, St)>, now: SimTime }
        impl Oracle {
            fn schedule(&mut self, at: SimTime) -> usize {
                self.events.push((at, St::Pending));
                self.events.len() - 1
            }
            fn cancel(&mut self, i: usize) -> bool {
                if self.events[i].1 == St::Pending {
                    self.events[i].1 = St::Cancelled;
                    true
                } else {
                    false
                }
            }
            fn pop(&mut self) -> Option<(SimTime, usize)> {
                // Earliest (time, seq) among pending; seq order = index
                // order, so strict `<` keeps the first (FIFO) among ties.
                let best = self
                    .events
                    .iter()
                    .enumerate()
                    .filter(|(_, (_, s))| *s == St::Pending)
                    .min_by(|(i, (ta, _)), (j, (tb, _))| {
                        ta.cmp(tb).then(i.cmp(j))
                    })
                    .map(|(i, _)| i)?;
                self.events[best].1 = St::Fired;
                self.now = self.events[best].0;
                Some((self.events[best].0, best))
            }
            fn live(&self) -> usize {
                self.events.iter().filter(|(_, s)| *s == St::Pending).count()
            }
        }

        let mut q = EventQueue::new();
        let mut oracle = Oracle { events: Vec::new(), now: SimTime::ZERO };
        let mut ids = Vec::new(); // (queue id, oracle index), same order
        for op in ops {
            match op {
                Op::Schedule(dt) => {
                    let at = q.now() + dt;
                    ids.push((q.schedule_in(dt, ()), oracle.schedule(at)));
                }
                Op::CancelNth(i) => {
                    if !ids.is_empty() {
                        let (qid, oid) = ids[i % ids.len()];
                        prop_assert_eq!(
                            q.cancel(qid),
                            oracle.cancel(oid),
                            "cancel verdicts diverged"
                        );
                    }
                }
                Op::Pop => {
                    let got = q.pop();
                    let want = oracle.pop();
                    match (got, want) {
                        (None, None) => {}
                        (Some(ev), Some((t, oid))) => {
                            prop_assert_eq!(ev.time, t, "pop times diverged");
                            // The popped queue id must be the one scheduled
                            // together with the oracle's pick.
                            let (qid, _) = ids.iter().find(|(_, o)| *o == oid)
                                .expect("oracle popped a scheduled event");
                            prop_assert_eq!(ev.id, *qid, "pop identity diverged");
                        }
                        (g, w) => prop_assert!(false, "pop presence diverged: {:?} vs {:?}",
                            g.map(|e| e.time), w.map(|(t, _)| t)),
                    }
                }
            }
            prop_assert_eq!(q.len(), oracle.live(), "live counts diverged");
        }
        // Drain both to the end.
        while let Some((t, _)) = oracle.pop() {
            let ev = q.pop();
            prop_assert_eq!(ev.map(|e| e.time), Some(t));
        }
        prop_assert!(q.pop().is_none());
    }

    /// Three-way differential test across the event-queue backends: the
    /// calendar queue, the indexed heap and a brute-force oracle must
    /// agree on every observable — pop order (time *and* identity),
    /// cancel verdicts and live counts — through arbitrary
    /// schedule/cancel/pop interleavings. The tie-heavy strategy makes
    /// same-timestamp runs the common case, so the FIFO `seq` tie-break
    /// of both backends is exercised hard, and the continuous strategy
    /// covers the calendar's bucket-sweep across sparse horizons.
    #[test]
    fn calendar_heap_and_oracle_pop_identically(
        tie_ops in prop::collection::vec(tie_heavy_op_strategy(), 1..300),
        sparse_ops in prop::collection::vec(op_strategy(), 1..200),
    ) {
        /// Flat-list oracle: earliest `(time, insertion index)` among
        /// pending wins — trivially correct, O(n) everything.
        #[derive(Clone, Copy, PartialEq)]
        enum St { Pending, Fired, Cancelled }
        struct Oracle(Vec<(SimTime, St)>);
        impl Oracle {
            fn cancel(&mut self, i: usize) -> bool {
                let live = self.0[i].1 == St::Pending;
                if live {
                    self.0[i].1 = St::Cancelled;
                }
                live
            }
            fn pop(&mut self) -> Option<(SimTime, usize)> {
                let best = self.0.iter().enumerate()
                    .filter(|(_, (_, s))| *s == St::Pending)
                    .min_by(|(i, (ta, _)), (j, (tb, _))| ta.cmp(tb).then(i.cmp(j)))
                    .map(|(i, _)| i)?;
                self.0[best].1 = St::Fired;
                Some((self.0[best].0, best))
            }
            fn live(&self) -> usize {
                self.0.iter().filter(|(_, s)| *s == St::Pending).count()
            }
        }

        for ops in [tie_ops, sparse_ops] {
            let mut heap = EventQueue::new();
            let mut cal = CalendarQueue::new();
            let mut oracle = Oracle(Vec::new());
            // Payloads carry the schedule index, so identity agreement is
            // checked without comparing opaque (backend-specific) ids.
            let mut heap_ids = Vec::new();
            let mut cal_ids = Vec::new();
            for op in ops {
                match op {
                    Op::Schedule(dt) => {
                        let n = oracle.0.len();
                        oracle.0.push((heap.now() + dt, St::Pending));
                        heap_ids.push(heap.schedule_in(dt, n));
                        cal_ids.push(cal.schedule_in(dt, n));
                    }
                    Op::CancelNth(i) => {
                        if !heap_ids.is_empty() {
                            let k = i % heap_ids.len();
                            let want = oracle.cancel(k);
                            prop_assert_eq!(heap.cancel(heap_ids[k]), want,
                                "heap cancel verdict diverged from oracle");
                            prop_assert_eq!(cal.cancel(cal_ids[k]), want,
                                "calendar cancel verdict diverged from oracle");
                        }
                    }
                    Op::Pop => {
                        let want = oracle.pop();
                        let h = heap.pop().map(|e| (e.time, e.payload));
                        let c = cal.pop().map(|e| (e.time, e.payload));
                        prop_assert_eq!(h, want, "heap pop diverged from oracle");
                        prop_assert_eq!(c, want, "calendar pop diverged from oracle");
                    }
                }
                prop_assert_eq!(heap.len(), oracle.live());
                prop_assert_eq!(cal.len(), oracle.live());
                prop_assert_eq!(heap.now(), cal.now(), "clocks diverged");
            }
            // Drain all three to exhaustion in lock-step.
            loop {
                let want = oracle.pop();
                let h = heap.pop().map(|e| (e.time, e.payload));
                let c = cal.pop().map(|e| (e.time, e.payload));
                prop_assert_eq!(h, want, "heap drain diverged from oracle");
                prop_assert_eq!(c, want, "calendar drain diverged from oracle");
                if want.is_none() {
                    break;
                }
            }
        }
    }

    /// peek_time always reports the time of the next successful pop.
    #[test]
    fn peek_matches_pop(delays in prop::collection::vec(0.0f64..50.0, 1..50)) {
        let mut q = EventQueue::new();
        for &d in &delays {
            q.schedule_in(d, ());
        }
        while let Some(t) = q.peek_time() {
            let ev = q.pop().expect("peek promised an event");
            prop_assert_eq!(ev.time, t);
        }
        prop_assert!(q.pop().is_none());
    }
}
