//! # churnbal-core
//!
//! The load-balancing policies of Dhakal et al., *"Load Balancing in the
//! Presence of Random Node Failure and Recovery"* (IPDPS 2006), implemented
//! against the [`churnbal_cluster::Policy`] hook interface:
//!
//! * [`Lbp1`] — the **preemptive** policy (§2.1): one one-way transfer of
//!   `L = K·m_sender` tasks at `t = 0` (Eq. 1), with gain, sender and
//!   receiver chosen from the regeneration-theory model that *knows the
//!   failure/recovery statistics*. No further action is ever taken.
//! * [`Lbp2`] — the **reactive** policy (§2.2): a churn-agnostic initial
//!   balancing built on the speed-weighted excess-load partition
//!   (Eqs. 6–7, gain optimised under the no-failure model of the authors'
//!   earlier work), plus a fixed-size compensating transfer (Eq. 8) fired
//!   by the failing node's backup system at every failure instant.
//! * [`baseline`] — reference policies (do nothing; initial balancing
//!   only; failure response only) for the ablation studies.
//! * [`optimizer`] — simulation-driven gain search, complementing the
//!   model-driven search in `churnbal_model::optimize`.
//! * [`glue`] — conversions between the simulator's [`SystemConfig`] and
//!   the analytical model's parameter set.
//! * [`dynamic`] — the dynamic-workload extension sketched in the paper's
//!   conclusion: re-running balancing episodes at external arrivals.
//! * [`spec`] — declarative policy construction: [`PolicySpec`] describes
//!   any policy as plain data (the scenario lab's currency), and builds it
//!   into a boxed [`AnyPolicy`].
//!
//! [`SystemConfig`]: churnbal_cluster::SystemConfig

pub mod baseline;
pub mod dynamic;
pub mod excess;
pub mod glue;
pub mod lbp1;
pub mod lbp2;
pub mod multi;
pub mod optimizer;
pub mod spec;

pub use baseline::{InitialBalanceOnly, UponFailureOnly};
pub use dynamic::{DynamicLbp1, EpisodicLbp2};
pub use excess::{excess_loads, partition_fractions};
pub use glue::model_params;
pub use lbp1::Lbp1;
pub use lbp2::Lbp2;
pub use multi::Lbp1Multi;
pub use spec::{AnyPolicy, PolicySpec};
